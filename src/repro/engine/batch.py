"""Batched multi-instance DP: stacked forests and 3-D table bindings.

One :class:`PackedTreeDP` vectorizes *within* a tree but still solves
instances one at a time — a deadline sweep or a batch of near-identical
serve requests pays the per-node python loop once per instance.  This
module stacks many (forest, table, deadline) *lanes* so the combine and
node-step passes run over an ``(instance, node, budget)`` tensor in a
handful of numpy calls:

* :class:`ForestShape` — the name-free CSR view of one out-forest
  (parent/child arrays, BFS levels, per-node heights, a padded
  children matrix) reconstructible from five arrays, so shapes travel
  to ``pmap`` workers without pickling graph objects;
* :class:`BatchedForest` — stacks many :class:`PackedForest`/shapes
  into group-blocked super-forest arrays (lanes sharing a forest share
  one shape and one tensor block);
* :func:`batched_sweep` — the kernel: children-first combine plus the
  running-min node step for a set of (lane, node) targets, processed
  by height so every pass is one gather/add/where per type;
* :class:`BatchedTreeDP` — the engine: per-lane row bindings (3-D
  time/cost tensors), per-lane curve caches and :class:`DPStats`, a
  batched refresh that recomputes only dirty cache misses, and a
  level-vectorized traceback over all lanes at once.

**Bit-identity.** Every float op matches the scalar kernels: child
curves sum with the same sequential ``+=`` order, the node step adds
the same two operands (``child_curve[j - t_k] + c_k``) and breaks ties
toward the smallest type with a strict running minimum (equivalent to
``argmin``'s first-occurrence rule), padded types carry ``time 0 /
cost inf`` which can never win, and padded budgets rely on curves
being prefix-identical across deadlines.  Per-lane ``DPStats`` equal a
dedicated :class:`PackedTreeDP` driven through the same
refresh/pin/traceback sequence — the cache probe logic is the same
``(row version, child state)`` interning, lane by lane.  Pinned rows
mint the same content-stable ``("fixed", base, k)`` version tokens
``TimeCostTable.with_fixed`` produces, so cache behavior matches the
scalar pin rounds exactly.

See ``docs/performance.md`` (Batched kernels) for the architecture and
measured numbers; ``tests/engine/test_batch.py`` and
``tests/properties/test_prop_batch.py`` pin the equivalences.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import EngineError, InfeasibleError, TableError
from ..fu.table import TimeCostTable
from .kernels import NO_CHOICE
from .pack import PackedForest
from .stats import DPStats

__all__ = ["ForestShape", "BatchedForest", "BatchedTreeDP", "batched_sweep"]

#: Arrays that fully define a :class:`ForestShape` (the rest is derived).
_SHAPE_FIELDS = ("parent", "child_off", "child_idx", "row_of", "roots")


class ForestShape:
    """Name-free CSR view of one out-forest, shared by many lanes.

    Nodes are numbered children-first (reverse-topological), exactly
    like :class:`~repro.engine.pack.PackedForest`; on top of the CSR
    arrays this precomputes what the batched kernel needs:

    * ``kids_mat``/``kid_counts`` — an ``(n, max_kids)`` children
      matrix padded with ``-1``, so the combine pass is one gather per
      child position instead of a per-node loop;
    * ``heights``/``by_height`` — leaf distance per node and the node
      sets per height, the batched sweep's dependency levels (every
      child of a height-``h`` node has height ``< h``);
    * ``levels``/``level_children``/... — the BFS front from the roots
      used by the vectorized traceback (same alignment contract as
      ``PackedForest``).

    Instances are reconstructible from five arrays
    (:meth:`defining_arrays` / :meth:`from_arrays`), which is how
    compiled batches travel to ``pmap`` workers without pickling any
    graph or table objects.
    """

    __slots__ = (
        "n",
        "n_rows",
        "parent",
        "child_off",
        "child_idx",
        "row_of",
        "roots",
        "kid_counts",
        "kids_mat",
        "kids_tuples",
        "row_list",
        "heights",
        "by_height",
        "levels",
        "level_children",
        "level_rows",
        "level_counts",
    )

    def __init__(
        self,
        parent: np.ndarray,
        child_off: np.ndarray,
        child_idx: np.ndarray,
        row_of: np.ndarray,
        roots: np.ndarray,
    ):
        self.parent = np.asarray(parent, dtype=np.int64)
        self.child_off = np.asarray(child_off, dtype=np.int64)
        self.child_idx = np.asarray(child_idx, dtype=np.int64)
        self.row_of = np.asarray(row_of, dtype=np.int64)
        self.roots = np.asarray(roots, dtype=np.int64)
        self.n = int(self.parent.size)
        self.n_rows = int(self.row_of.max()) + 1 if self.n else 0

        self.kid_counts = np.diff(self.child_off)
        max_kids = int(self.kid_counts.max()) if self.n else 0
        kids_mat = np.full((self.n, max_kids), -1, dtype=np.int64)
        child_list = self.child_idx.tolist()
        off_list = self.child_off.tolist()
        kids_tuples: List[Tuple[int, ...]] = []
        for i in range(self.n):
            lo, hi = off_list[i], off_list[i + 1]
            kids_mat[i, : hi - lo] = self.child_idx[lo:hi]
            kids_tuples.append(tuple(child_list[lo:hi]))
        self.kids_mat = kids_mat
        #: Python-native mirrors of ``child_idx``/``row_of`` — the cache
        #: probe loop is pure-python and numpy scalar indexing would
        #: dominate it.
        self.kids_tuples = kids_tuples
        self.row_list: List[int] = self.row_of.tolist()

        heights = np.zeros(self.n, dtype=np.int64)
        for i in range(self.n):  # ascending index = children first
            lo, hi = int(self.child_off[i]), int(self.child_off[i + 1])
            if hi > lo:
                heights[i] = 1 + int(heights[self.child_idx[lo:hi]].max())
        self.heights = heights
        hmax = int(heights.max()) + 1 if self.n else 0
        self.by_height = [np.flatnonzero(heights == h) for h in range(hmax)]

        levels: List[np.ndarray] = []
        level_children: List[np.ndarray] = []
        front = self.roots
        while front.size:
            levels.append(front)
            parts = [
                self.child_idx[self.child_off[i] : self.child_off[i + 1]]
                for i in front.tolist()
            ]
            front = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            level_children.append(front)
        self.levels = levels
        self.level_children = level_children
        self.level_rows = [self.row_of[lvl] for lvl in levels]
        self.level_counts = [self.kid_counts[lvl] for lvl in levels]

    @classmethod
    def from_pack(cls, pack: PackedForest) -> "ForestShape":
        """The shape of a compiled :class:`PackedForest` (names dropped)."""
        return cls(
            pack.parent, pack.child_off, pack.child_idx, pack.row_of, pack.roots
        )

    def defining_arrays(self) -> Dict[str, np.ndarray]:
        """The five arrays :meth:`from_arrays` rebuilds this shape from."""
        return {name: getattr(self, name) for name in _SHAPE_FIELDS}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "ForestShape":
        """Rebuild a shape from :meth:`defining_arrays` output."""
        missing = [name for name in _SHAPE_FIELDS if name not in arrays]
        if missing:
            raise EngineError(f"forest shape arrays missing {missing!r}")
        return cls(*(arrays[name] for name in _SHAPE_FIELDS))


class BatchedForest:
    """Many packed forests stacked into group-blocked CSR arrays.

    Lanes handing in the *same* forest object (a deadline sweep over
    one tree, same-structure serve requests sharing an expansion) are
    grouped: one :class:`ForestShape` and, in :class:`BatchedTreeDP`,
    one tensor block per group.  :meth:`stacked_arrays` concatenates
    the groups into a single CSR super-forest (node/row/root offsets
    applied) — the wire format batched jobs ship to workers.
    """

    def __init__(
        self, packs: Sequence[Union[PackedForest, ForestShape]]
    ) -> None:
        if not packs:
            raise EngineError("BatchedForest needs at least one forest")
        self.shapes: List[ForestShape] = []
        self.lane_group: List[int] = []
        self.lane_slot: List[int] = []
        self.group_lanes: List[List[int]] = []
        seen: Dict[int, int] = {}
        for lane, pack in enumerate(packs):
            gi = seen.get(id(pack))
            if gi is None:
                gi = seen[id(pack)] = len(self.shapes)
                shape = (
                    pack
                    if isinstance(pack, ForestShape)
                    else ForestShape.from_pack(pack)
                )
                self.shapes.append(shape)
                self.group_lanes.append([])
            self.lane_group.append(gi)
            self.lane_slot.append(len(self.group_lanes[gi]))
            self.group_lanes[gi].append(lane)

    @property
    def n_lanes(self) -> int:
        return len(self.lane_group)

    @property
    def n_groups(self) -> int:
        return len(self.shapes)

    def stacked_arrays(self) -> Dict[str, np.ndarray]:
        """One CSR super-forest: group blocks concatenated with offsets.

        ``node_off``/``row_off``/``root_off`` delimit the blocks;
        ``parent``/``child_idx``/``roots`` carry global node indices
        (parents of roots stay ``-1``), ``row_of`` global row indices.
        :meth:`shapes_from_stacked` inverts this exactly.
        """
        node_off = np.zeros(len(self.shapes) + 1, dtype=np.int64)
        row_off = np.zeros(len(self.shapes) + 1, dtype=np.int64)
        root_off = np.zeros(len(self.shapes) + 1, dtype=np.int64)
        child_off_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        parent_parts: List[np.ndarray] = []
        child_parts: List[np.ndarray] = []
        row_parts: List[np.ndarray] = []
        root_parts: List[np.ndarray] = []
        edge_base = 0
        for g, shape in enumerate(self.shapes):
            base = int(node_off[g])
            node_off[g + 1] = base + shape.n
            row_off[g + 1] = row_off[g] + shape.n_rows
            root_off[g + 1] = root_off[g] + shape.roots.size
            shifted_parent = shape.parent.copy()
            shifted_parent[shifted_parent >= 0] += base
            parent_parts.append(shifted_parent)
            child_parts.append(shape.child_idx + base)
            child_off_parts.append(shape.child_off[1:] + edge_base)
            edge_base += int(shape.child_idx.size)
            row_parts.append(shape.row_of + int(row_off[g]))
            root_parts.append(shape.roots + base)

        def _cat(parts: List[np.ndarray]) -> np.ndarray:
            return (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )

        return {
            "node_off": node_off,
            "row_off": row_off,
            "root_off": root_off,
            "parent": _cat(parent_parts),
            "child_off": np.concatenate(child_off_parts),
            "child_idx": _cat(child_parts),
            "row_of": _cat(row_parts),
            "roots": _cat(root_parts),
        }

    @staticmethod
    def shapes_from_stacked(
        arrays: Dict[str, np.ndarray],
    ) -> List[ForestShape]:
        """Rebuild the per-group shapes from :meth:`stacked_arrays`."""
        node_off = np.asarray(arrays["node_off"], dtype=np.int64)
        row_off = np.asarray(arrays["row_off"], dtype=np.int64)
        root_off = np.asarray(arrays["root_off"], dtype=np.int64)
        shapes: List[ForestShape] = []
        for g in range(node_off.size - 1):
            lo, hi = int(node_off[g]), int(node_off[g + 1])
            child_off = np.asarray(arrays["child_off"], dtype=np.int64)[
                lo : hi + 1
            ]
            edge_lo = int(child_off[0])
            parent = np.asarray(arrays["parent"], dtype=np.int64)[lo:hi].copy()
            parent[parent >= 0] -= lo
            rlo, rhi = int(root_off[g]), int(root_off[g + 1])
            shapes.append(
                ForestShape(
                    parent=parent,
                    child_off=child_off - edge_lo,
                    child_idx=np.asarray(arrays["child_idx"], dtype=np.int64)[
                        edge_lo : int(child_off[-1])
                    ]
                    - lo,
                    row_of=np.asarray(arrays["row_of"], dtype=np.int64)[lo:hi]
                    - int(row_off[g]),
                    roots=np.asarray(arrays["roots"], dtype=np.int64)[rlo:rhi]
                    - lo,
                )
            )
        return shapes


def batched_sweep(
    shape: ForestShape,
    curves: np.ndarray,
    choices: np.ndarray,
    times: np.ndarray,
    costs: np.ndarray,
    slot_idx: np.ndarray,
    node_idx: np.ndarray,
) -> int:
    """Combine + node-step for the (slot, node) targets, children-first.

    ``curves``/``choices`` are the group's dense ``(lanes, n, budgets)``
    tensors, ``times``/``costs`` the bound ``(lanes, rows, types)``
    tensors.  Targets are processed grouped by node height, so every
    child a target combines is already final (clean, or computed at a
    lower height in an earlier pass); within one height all targets
    are independent.  Returns the number of targets computed.

    Float semantics mirror :func:`~repro.engine.kernels.node_step` and
    ``combine_children`` exactly: child curves accumulate with the same
    sequential ``+=`` (the first child is an assignment, not an add),
    each type's candidate is the same ``child_curve[j - t_k] + c_k``
    add, and the running strict-``<`` minimum keeps the earliest
    minimal type, matching ``argmin``'s first-occurrence tie-break.
    Types padded with ``time 0 / cost inf`` never win; infeasible
    budgets come out ``inf`` with choice :data:`NO_CHOICE`.
    """
    if node_idx.size == 0:
        return 0
    size = curves.shape[2]
    m = times.shape[2]
    budget_axis = np.arange(size, dtype=np.int64)[None, :]
    order = np.argsort(shape.heights[node_idx], kind="stable")
    heights = shape.heights[node_idx][order]
    bounds = np.flatnonzero(np.diff(heights)) + 1
    for part in np.split(order, bounds):
        nodes = node_idx[part]
        slots = slot_idx[part]
        t_count = nodes.size
        base = np.zeros((t_count, size), dtype=np.float64)
        counts = shape.kid_counts[nodes]
        max_kids = int(counts.max()) if t_count else 0
        for j in range(max_kids):
            sel = counts > j
            kid = shape.kids_mat[nodes[sel], j]
            if j == 0:
                base[sel] = curves[slots[sel], kid]
            else:
                base[sel] += curves[slots[sel], kid]
        rows = shape.row_of[nodes]
        t = times[slots, rows]
        c = costs[slots, rows]
        best = np.empty((t_count, size), dtype=np.float64)
        kbest = np.zeros((t_count, size), dtype=np.int16)
        for k in range(m):
            tk = t[:, k : k + 1]
            idx = budget_axis - tk
            valid = idx >= 0
            shifted = np.take_along_axis(base, np.where(valid, idx, 0), axis=1)
            cand = np.where(valid, shifted + c[:, k : k + 1], np.inf)
            if k == 0:
                best[:] = cand
            else:
                better = cand < best
                np.copyto(best, cand, where=better)
                kbest[better] = k
        kbest[~np.isfinite(best)] = NO_CHOICE
        curves[slots, nodes] = best
        choices[slots, nodes] = kbest
    return int(node_idx.size)


class _Group:
    """Per-group tensors plus per-slot cache/binding bookkeeping."""

    __slots__ = (
        "shape",
        "lanes",
        "deadlines",
        "size",
        "m",
        "lane_m",
        "times",
        "costs",
        "rv",
        "rv_list",
        "tokens",
        "intern",
        "pending",
        "staged",
        "curves",
        "choices",
        "totals",
        "has_total",
        "cur_sid",
        "sids",
        "cache",
        "dirty_memo",
    )

    def __init__(self, shape: ForestShape, lanes: List[int], deadlines: List[int]):
        self.shape = shape
        self.lanes = lanes
        self.deadlines = deadlines
        self.size = max(deadlines) + 1
        nl = len(lanes)
        self.m = 0  # type capacity; fixed at materialization
        self.lane_m: List[int] = [0] * nl
        self.times: Optional[np.ndarray] = None
        self.costs: Optional[np.ndarray] = None
        self.rv: Optional[np.ndarray] = None
        #: Python-list mirror of ``rv`` rows, kept in sync by the bind
        #: paths so the probe loop never pays a per-refresh ``tolist``.
        self.rv_list: List[Optional[List[int]]] = [None] * nl
        #: Current version token per (slot, row) — pins derive from these.
        self.tokens: List[List[Hashable]] = [[] for _ in range(nl)]
        self.intern: List[Dict[Hashable, int]] = [{} for _ in range(nl)]
        self.pending: List[Optional[List[int]]] = [None] * nl
        #: Pre-materialization staging: slot -> (times, costs, rv ids).
        self.staged: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self.curves: Optional[np.ndarray] = None
        self.choices: Optional[np.ndarray] = None
        self.totals: Optional[np.ndarray] = None
        self.has_total = [False] * nl
        self.cur_sid: List[Optional[List[int]]] = [None] * nl
        n = shape.n
        self.sids: List[List[Dict[Hashable, int]]] = [
            [{} for _ in range(n)] for _ in range(nl)
        ]
        self.cache: List[List[Dict[int, Tuple[np.ndarray, np.ndarray]]]] = [
            [{} for _ in range(n)] for _ in range(nl)
        ]
        #: Structural dirty sets shared across slots with equal pending keys.
        self.dirty_memo: Dict[Tuple[object, ...], List[int]] = {}

    def materialize(self) -> None:
        """Allocate the 3-D tensors once every staged lane has bound."""
        if self.times is not None:
            return
        if len(self.staged) != len(self.lanes):
            missing = [
                self.lanes[s]
                for s in range(len(self.lanes))
                if s not in self.staged
            ]
            raise EngineError(
                f"lanes {missing!r} have no bound table; bind every lane "
                "of a group before the first refresh"
            )
        nl, nr = len(self.lanes), self.shape.n_rows
        self.m = max(
            (int(t.shape[1]) for t, _, _ in self.staged.values()), default=1
        )
        self.m = max(self.m, 1)
        # time 0 / cost inf padding: a padded type's candidate is always
        # inf, so it can never strictly beat a real one.
        self.times = np.zeros((nl, nr, self.m), dtype=np.int64)
        self.costs = np.full((nl, nr, self.m), np.inf, dtype=np.float64)
        self.rv = np.zeros((nl, nr), dtype=np.int64)
        for s, (t, c, rv) in sorted(self.staged.items()):
            mm = int(t.shape[1])
            self.lane_m[s] = mm
            self.times[s, :, :mm] = t
            self.costs[s, :, :mm] = c
            self.rv[s] = rv
            self.rv_list[s] = rv.tolist()
        self.staged.clear()
        n = self.shape.n
        self.curves = np.zeros((nl, n, self.size), dtype=np.float64)
        self.choices = np.full((nl, n, self.size), NO_CHOICE, dtype=np.int16)
        self.totals = np.zeros((nl, self.size), dtype=np.float64)


class BatchedTreeDP:
    """Multi-lane `Tree_Assign` DP over stacked packed forests.

    Each *lane* is one (forest, table, deadline) instance; lanes
    sharing a forest object share a group block.  The per-lane contract
    mirrors :class:`~repro.engine.kernels.PackedTreeDP` bit for bit —
    same curves, choices, version-token interning, cache probes and
    :class:`DPStats` counters for the same bind/refresh/traceback
    sequence — while the compute runs batched across lanes via
    :func:`batched_sweep`.

    Binding comes in three forms: :meth:`bind_table` (a
    :class:`~repro.fu.table.TimeCostTable` plus its row keys),
    :meth:`bind_arrays` (pre-extracted matrices + version tokens — the
    worker path, where tables never cross the process boundary), and
    :meth:`bind_pinned` (the ``with_fixed`` pin fast path: O(1) row
    update minting the same ``("fixed", base, k)`` token).  Every lane
    of a group must bind before the group's first :meth:`refresh`.
    """

    def __init__(
        self,
        packs: Sequence[Union[PackedForest, ForestShape]],
        deadlines: Sequence[int],
        *,
        names: Optional[Sequence[str]] = None,
        stats: Optional[Sequence[Optional[DPStats]]] = None,
    ):
        if len(packs) != len(deadlines):
            raise EngineError(
                f"{len(packs)} forests but {len(deadlines)} deadlines"
            )
        for d in deadlines:
            if d < 0:
                raise InfeasibleError(f"deadline must be >= 0, got {d}")
        self._forest = BatchedForest(packs)
        self._deadlines = [int(d) for d in deadlines]
        self._names = (
            list(names) if names is not None else ["batched"] * len(packs)
        )
        if len(self._names) != len(packs):
            raise EngineError(
                f"{len(packs)} forests but {len(self._names)} names"
            )
        given = list(stats) if stats is not None else [None] * len(packs)
        if len(given) != len(packs):
            raise EngineError(
                f"{len(packs)} forests but {len(given)} stats slots"
            )
        self.stats: List[DPStats] = [s if s is not None else DPStats() for s in given]
        self._groups: List[_Group] = [
            _Group(
                self._forest.shapes[g],
                lanes,
                [self._deadlines[lane] for lane in lanes],
            )
            for g, lanes in enumerate(self._forest.group_lanes)
        ]
        self._refreshed = [False] * len(packs)

    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return self._forest.n_lanes

    @property
    def forest(self) -> BatchedForest:
        return self._forest

    def deadline(self, lane: int) -> int:
        return self._deadlines[lane]

    def _slot(self, lane: int) -> Tuple[_Group, int]:
        if not 0 <= lane < self._forest.n_lanes:
            raise EngineError(
                f"lane {lane} out of range [0, {self._forest.n_lanes})"
            )
        return (
            self._groups[self._forest.lane_group[lane]],
            self._forest.lane_slot[lane],
        )

    # ------------------------------------------------------------------
    def bind_table(
        self, lane: int, table: TimeCostTable, rows: Sequence[Hashable]
    ) -> None:
        """Bind ``table`` to ``lane``; ``rows`` are its row keys in the
        forest's row order (``PackedForest.rows``)."""
        grp, _ = self._slot(lane)
        nr = grp.shape.n_rows
        if len(rows) != nr:
            raise TableError(
                f"lane {lane} forest has {nr} rows but {len(rows)} keys given"
            )
        m = table.num_types
        t = np.empty((nr, m), dtype=np.int64)
        c = np.empty((nr, m), dtype=np.float64)
        tokens: List[Hashable] = []
        for r in range(nr):
            t[r] = table.times(rows[r])
            c[r] = table.costs(rows[r])
            tokens.append(table.row_version(rows[r]))
        self.bind_arrays(lane, t, c, tokens)

    def bind_arrays(
        self,
        lane: int,
        times: np.ndarray,
        costs: np.ndarray,
        tokens: Sequence[Hashable],
    ) -> None:
        """Bind pre-extracted row matrices + version tokens to ``lane``.

        Token interning mirrors :class:`~repro.engine.pack.RowBinding`:
        tokens are interned per lane to small ids, and only rows whose
        id changed since the previous bind are marked pending for the
        next refresh.  Any injective token scheme is equivalent — the
        worker path uses plain row indices.
        """
        grp, slot = self._slot(lane)
        nr = grp.shape.n_rows
        times = np.ascontiguousarray(times, dtype=np.int64)
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        if times.shape != costs.shape or times.ndim != 2 or times.shape[0] != nr:
            raise TableError(
                f"bad bind shapes for lane {lane}: {times.shape} vs "
                f"{costs.shape} (forest has {nr} rows)"
            )
        if len(tokens) != nr:
            raise TableError(
                f"lane {lane}: {len(tokens)} version tokens for {nr} rows"
            )
        if times.size and int(times.min()) < 0:
            raise TableError(f"negative execution time in lane {lane} bind")
        m = int(times.shape[1])
        intern = grp.intern[slot]
        rv_new = np.empty(nr, dtype=np.int64)
        for r in range(nr):
            token = tokens[r]
            rid = intern.get(token)
            if rid is None:
                rid = intern[token] = len(intern)
            rv_new[r] = rid
        grp.tokens[slot] = list(tokens)
        if grp.times is None:
            grp.staged[slot] = (times, costs, rv_new)
            grp.pending[slot] = None  # full first bind
            return
        if m != grp.lane_m[slot]:
            raise TableError(
                f"table has {m} FU types but this binding was built for "
                f"{grp.lane_m[slot]}"
            )
        assert grp.rv is not None
        changed = np.flatnonzero(rv_new != grp.rv[slot])
        grp.times[slot, :, :m][changed] = times[changed]
        grp.costs[slot, :, :m][changed] = costs[changed]
        grp.rv[slot] = rv_new
        grp.rv_list[slot] = rv_new.tolist()
        pend = grp.pending[slot]
        if pend is not None:
            pend.extend(int(r) for r in changed)

    def bind_pinned(self, lane: int, row: int, fu_type: int) -> None:
        """Pin ``row`` of ``lane`` to ``fu_type`` — the ``with_fixed``
        fast path: one row update, same version token, no table object."""
        grp, slot = self._slot(lane)
        if grp.times is None:
            raise EngineError(
                "bind_pinned needs a materialized binding; refresh first"
            )
        nr = grp.shape.n_rows
        if not 0 <= row < nr:
            raise EngineError(f"row {row} out of range [0, {nr})")
        m = grp.lane_m[slot]
        if not 0 <= fu_type < m:
            raise EngineError(
                f"fu_type {fu_type} out of range [0, {m}) for lane {lane}"
            )
        token: Hashable = ("fixed", grp.tokens[slot][row], int(fu_type))
        grp.tokens[slot][row] = token
        intern = grp.intern[slot]
        rid = intern.get(token)
        if rid is None:
            rid = intern[token] = len(intern)
        assert grp.rv is not None
        if rid == int(grp.rv[slot, row]):
            return
        grp.rv[slot, row] = rid
        rv_list = grp.rv_list[slot]
        if rv_list is not None:
            rv_list[row] = rid
        grp.times[slot, row, :m] = grp.times[slot, row, fu_type]
        grp.costs[slot, row, :m] = grp.costs[slot, row, fu_type]
        pend = grp.pending[slot]
        if pend is not None:
            pend.append(int(row))

    # ------------------------------------------------------------------
    def _dirty(self, grp: _Group, slot: int) -> List[int]:
        """Dirty node list for ``slot`` (structurally memoized).

        Same rule as ``PackedTreeDP._dirty_nodes``: everything on the
        first refresh, else the changed rows' nodes plus their ancestor
        chains.  The result depends only on the changed-row set, so
        lanes pinning the same row in lockstep share one computation.
        """
        pend = grp.pending[slot]
        if grp.cur_sid[slot] is None or pend is None:
            return list(range(grp.shape.n))
        if not pend:
            return []
        key: Tuple[object, ...] = tuple(sorted(set(pend)))
        memo = grp.dirty_memo.get(key)
        if memo is not None:
            return memo
        shape = grp.shape
        mark = np.isin(shape.row_of, np.asarray(key, dtype=np.int64))
        parent = shape.parent
        for i in np.flatnonzero(mark).tolist():
            p = int(parent[i])
            while p >= 0 and not mark[p]:
                mark[p] = True
                p = int(parent[p])
        memo = np.flatnonzero(mark).tolist()
        grp.dirty_memo[key] = memo
        return memo

    def refresh(self, lanes: Optional[Sequence[int]] = None) -> "BatchedTreeDP":
        """(Re)compute the DP for ``lanes`` (default: every lane).

        Per lane this is exactly one ``PackedTreeDP.refresh``: probe the
        dirty nodes' caches, copy hits into the dense tensors, compute
        the misses — batched across lanes via :func:`batched_sweep` —
        and rebuild the root totals.  Returns ``self`` for chaining.
        """
        t0 = time.perf_counter()
        wanted = set(range(self.n_lanes)) if lanes is None else set(lanes)
        refreshed: List[int] = []
        for grp in self._groups:
            active = [
                s for s, lane in enumerate(grp.lanes) if lane in wanted
            ]
            if not active:
                continue
            grp.materialize()
            assert grp.rv is not None and grp.curves is not None
            assert grp.choices is not None and grp.totals is not None
            shape = grp.shape
            n = shape.n
            kids_tuples = shape.kids_tuples
            row_list = shape.row_list
            slot_targets: List[int] = []
            node_targets: List[int] = []
            for s in active:
                lane = grp.lanes[s]
                st = self.stats[lane]
                st.refreshes += 1
                dirty = self._dirty(grp, s)
                grp.pending[s] = []
                if grp.cur_sid[s] is None:
                    grp.cur_sid[s] = [-1] * n
                cur_sid = grp.cur_sid[s]
                assert cur_sid is not None
                rv_row = grp.rv_list[s]
                assert rv_row is not None  # set at materialization
                sids_all = grp.sids[s]
                cache_all = grp.cache[s]
                curves_s = grp.curves[s]
                choices_s = grp.choices[s]
                recomputed = 0
                slot_append = slot_targets.append
                node_append = node_targets.append
                # Key shape is free per node (each node owns its dict):
                # a flat (rv, *child sids) tuple — or the bare rv for a
                # leaf — is injective because the arity is fixed, and
                # skips a nested tuple build per probe.  A new sid is
                # always a recompute and a known sid always has a cache
                # entry (every current sid was stored when computed),
                # exactly like the scalar engine — so the counters and
                # the numerics are untouched by the single-lookup form.
                for i in dirty:
                    kids = kids_tuples[i]
                    state: object = (
                        (rv_row[row_list[i]], *[cur_sid[c] for c in kids])
                        if kids
                        else rv_row[row_list[i]]
                    )
                    sids = sids_all[i]
                    sid = sids.get(state)
                    if sid is None:
                        sids[state] = sid = len(sids)
                        cur_sid[i] = sid
                        recomputed += 1
                        slot_append(s)
                        node_append(i)
                    elif sid != cur_sid[i]:
                        cur_sid[i] = sid
                        entry = cache_all[i][sid]
                        curves_s[i] = entry[0]
                        choices_s[i] = entry[1]
                st.nodes_visited += n
                st.nodes_recomputed += recomputed
                st.cache_hits += n - recomputed
                if dirty or not grp.has_total[s]:
                    grp.has_total[s] = False  # rebuilt below
                refreshed.append(lane)
            slots_arr = np.asarray(slot_targets, dtype=np.int64)
            nodes_arr = np.asarray(node_targets, dtype=np.int64)
            assert grp.times is not None and grp.costs is not None
            batched_sweep(
                shape,
                grp.curves,
                grp.choices,
                grp.times,
                grp.costs,
                slots_arr,
                nodes_arr,
            )
            if slot_targets:
                # One fancy-indexed snapshot instead of two .copy() calls
                # per recomputed node; each cache entry is a row view of
                # the snapshot, which nothing else ever writes.
                curves_snap = grp.curves[slots_arr, nodes_arr]
                choices_snap = grp.choices[slots_arr, nodes_arr]
                for j, (s, i) in enumerate(zip(slot_targets, node_targets)):
                    sid = grp.cur_sid[s][i]  # type: ignore[index]
                    grp.cache[s][i][sid] = (curves_snap[j], choices_snap[j])
            roots = shape.roots
            for s in active:
                if grp.has_total[s]:
                    continue
                if roots.size:
                    total = grp.curves[s, int(roots[0])].copy()
                    for r in roots[1:].tolist():
                        total += grp.curves[s, r]
                else:
                    total = np.zeros(grp.size, dtype=np.float64)
                grp.totals[s] = total
                grp.has_total[s] = True
                self._refreshed[grp.lanes[s]] = True
        if refreshed:
            share = (time.perf_counter() - t0) / len(refreshed)
            for lane in refreshed:
                self.stats[lane].seconds_refresh += share
        return self

    # ------------------------------------------------------------------
    def _require_refreshed(self, lane: int) -> Tuple[_Group, int]:
        grp, slot = self._slot(lane)
        if not self._refreshed[lane]:
            raise InfeasibleError(
                "BatchedTreeDP.refresh() must run before queries"
            )
        return grp, slot

    def total_curve(self, lane: int) -> np.ndarray:
        """The lane's forest curve ``D[0..deadline]`` (prefix view)."""
        grp, slot = self._require_refreshed(lane)
        assert grp.totals is not None
        return grp.totals[slot, : self._deadlines[lane] + 1]

    def min_feasible(self, lane: int) -> int:
        """Smallest feasible budget of ``lane`` (-1 if none ≤ deadline)."""
        curve = self.total_curve(lane)
        finite = np.isfinite(curve)
        if not finite.any():
            return -1
        return int(np.argmax(finite))

    def min_time(self, lane: int) -> int:
        """Longest root→leaf path under the lane's per-row minimum times.

        The ``minimum possible is ...`` diagnostic of the infeasibility
        error — identical to ``longest_path_time`` over
        ``table.min_time`` per node, computed from the bound tensors.
        """
        grp, slot = self._require_refreshed(lane)
        assert grp.times is not None
        shape = grp.shape
        if shape.n == 0:
            return 0
        m = grp.lane_m[slot]
        tmin = grp.times[slot, :, :m].min(axis=1)[shape.row_of]
        down = np.zeros(shape.n, dtype=np.int64)
        for i in range(shape.n):  # ascending = children first
            lo, hi = int(shape.child_off[i]), int(shape.child_off[i + 1])
            best_kid = int(down[shape.child_idx[lo:hi]].max()) if hi > lo else 0
            down[i] = int(tmin[i]) + best_kid
        return int(down[shape.roots].max()) if shape.roots.size else 0

    def infeasible_error(self, lane: int, budget: int) -> InfeasibleError:
        """The scalar engines' infeasibility error for ``lane``."""
        min_time = self.min_time(lane)
        return InfeasibleError(
            f"no assignment of {self._names[lane]!r} completes within "
            f"{budget} (minimum possible is {min_time})",
            min_feasible=min_time,
        )

    def traceback_all(
        self,
        budgets: Sequence[Optional[int]],
        *,
        on_infeasible: str = "raise",
    ) -> List[Union[np.ndarray, InfeasibleError, None]]:
        """Optimal tree choices for every lane at its budget, batched.

        ``budgets[lane] = None`` skips the lane (entry stays ``None``).
        A budget outside ``[0, deadline]`` raises immediately, like the
        scalar engine's range check.  An infeasible lane either raises
        the scalar-identical :class:`InfeasibleError`
        (``on_infeasible="raise"``, lowest lane first) or stores the
        exception in its slot (``"mark"``) so independent jobs in one
        batch can fail independently; either way the lane's traceback
        counter increments first, as the scalar engine's would.

        Feasible lanes get an ``(n,)`` array of type choices in packed
        node order, equal to ``PackedTreeDP.traceback_at`` values.
        """
        if len(budgets) != self.n_lanes:
            raise EngineError(
                f"{len(budgets)} budgets for {self.n_lanes} lanes"
            )
        if on_infeasible not in ("raise", "mark"):
            raise EngineError(
                f"on_infeasible must be 'raise' or 'mark', got {on_infeasible!r}"
            )
        t0 = time.perf_counter()
        out: List[Union[np.ndarray, InfeasibleError, None]] = [None] * len(
            budgets
        )
        n_traced = 0
        for grp in self._groups:
            req: List[Tuple[int, int]] = []  # (slot, budget)
            for s, lane in enumerate(grp.lanes):
                b = budgets[lane]
                if b is None:
                    continue
                self._require_refreshed(lane)
                if not 0 <= b <= self._deadlines[lane]:
                    raise InfeasibleError(
                        f"budget {b} outside the engine's range "
                        f"[0, {self._deadlines[lane]}]"
                    )
                req.append((s, int(b)))
            if not req:
                continue
            assert grp.totals is not None and grp.choices is not None
            assert grp.times is not None
            feasible: List[Tuple[int, int]] = []
            for s, b in req:
                lane = grp.lanes[s]
                self.stats[lane].tracebacks += 1
                n_traced += 1
                if not np.isfinite(grp.totals[s, b]):
                    err = self.infeasible_error(lane, b)
                    if on_infeasible == "raise":
                        raise err
                    out[lane] = err
                else:
                    feasible.append((s, b))
            if not feasible:
                continue
            shape = grp.shape
            slots = np.asarray([s for s, _ in feasible], dtype=np.int64)
            ns = slots.size
            budgets_mat = np.zeros((ns, shape.n), dtype=np.int64)
            ks_mat = np.zeros((ns, shape.n), dtype=np.int64)
            if shape.roots.size:
                budgets_mat[:, shape.roots] = np.asarray(
                    [b for _, b in feasible], dtype=np.int64
                )[:, None]
            col = slots[:, None]
            for lvl, kids, lvl_rows, lvl_counts in zip(
                shape.levels,
                shape.level_children,
                shape.level_rows,
                shape.level_counts,
            ):
                b = budgets_mat[:, lvl]
                k = grp.choices[col, lvl[None, :], b]
                assert int(k.min()) != NO_CHOICE, (
                    "traceback hit infeasible cell (group node "
                    f"{int(lvl[int(np.argmax((k == NO_CHOICE).any(axis=0)))])})"
                )
                ks_mat[:, lvl] = k
                if kids.size:
                    rem = b - grp.times[col, lvl_rows[None, :], k]
                    budgets_mat[:, kids] = np.repeat(rem, lvl_counts, axis=1)
            for j, (s, _) in enumerate(feasible):
                out[grp.lanes[s]] = ks_mat[j]
        if n_traced:
            share = (time.perf_counter() - t0) / n_traced
            for lane, b in enumerate(budgets):
                if b is not None:
                    self.stats[lane].seconds_traceback += share
        return out

    def traceback_at(self, lane: int, budget: int) -> np.ndarray:
        """Single-lane traceback (raises like the scalar engine)."""
        budgets: List[Optional[int]] = [None] * self.n_lanes
        budgets[lane] = budget
        result = self.traceback_all(budgets, on_infeasible="raise")[lane]
        assert isinstance(result, np.ndarray)
        return result
