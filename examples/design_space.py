#!/usr/bin/env python3
"""Design-space exploration: Pareto frontiers across FU-library presets.

A downstream user's workflow: pick a benchmark kernel, compare how the
cost/latency trade-off looks on different target technologies (the
library presets), and read off the cheapest deadline that fits a frame
budget.  Everything comes from one `Tree_Assign` DP pass per library —
the paper's tables are six samples of these curves.

Run:  python examples/design_space.py
"""

from repro import min_completion_time
from repro.assign.frontier import tree_frontier
from repro.fu import energy_table, preset_library, preset_names
from repro.graph.analysis import profile
from repro.suite import lattice_filter


def main() -> None:
    dfg = lattice_filter(4).dag()
    print(profile(dfg).describe())
    frame_budget = 40  # steps available per sample period

    # Fine-grained base workloads widen the per-type time spread so the
    # frontiers have real knees to explore.
    op_work = {"mul": 8, "add": 4}

    for preset in preset_names():
        library = preset_library(preset)
        table = energy_table(dfg, library, op_work=op_work)
        floor = min_completion_time(dfg, table)
        frontier = tree_frontier(
            dfg, table, max_deadline=max(3 * floor, frame_budget)
        )
        print(f"\n[{preset}] types {library.names}, "
              f"minimum latency {floor} steps")
        for deadline, cost in frontier:
            marker = "  <- frame budget" if deadline > frame_budget else ""
            if marker:
                break
            print(f"  latency {deadline:3d}  min energy {cost:7.1f}")
        feasible = [(d, c) for d, c in frontier if d <= frame_budget]
        if feasible:
            d, c = feasible[-1]
            print(f"  => within the {frame_budget}-step budget: "
                  f"energy {c:.1f} at latency {d}")
        else:
            print(f"  => cannot meet the {frame_budget}-step budget")


if __name__ == "__main__":
    main()
