#!/usr/bin/env python3
"""Semantic check: the synthesized schedule computes real filter output.

Synthesizes an FIR filter and the cyclic accumulator benchmark, feeds
them an impulse, and replays the bound static schedule cycle by cycle
with the functional simulator — the value streams must match the
reference evaluation sample for sample.  This is the strongest form of
"the schedule is correct": not just precedence-clean, but computing
the same numbers the mathematical dataflow defines.

Run:  python examples/simulate_filter.py
"""

from repro import DFG, min_completion_time, synthesize
from repro.fu import random_table
from repro.sim import simulate, simulate_schedule
from repro.suite import fir_filter


def run_fir() -> None:
    dfg = fir_filter(4)
    dag = dfg.dag()
    table = random_table(dag, num_types=3, seed=5)
    deadline = min_completion_time(dag, table) + 3
    result = synthesize(dfg, table, deadline)

    # impulse into every tap multiplier (each tap sees the delayed
    # input line; the generic op semantics make taps pass-through)
    steps = 5
    inputs = {n: [1.0] + [0.0] * (steps - 1) for n in dag.roots()}
    reference = simulate(dfg, steps, inputs=inputs)
    replay = simulate_schedule(
        dfg, table, result.assignment, result.schedule, steps, inputs=inputs
    )
    out = dag.leaves()[0]
    print(f"[{dfg.name}] cost {result.cost:.1f}, "
          f"configuration {result.configuration.label()}")
    print(f"  impulse response at {out}: {reference[out]}")
    assert replay == reference, "schedule replay diverged from reference!"
    print("  schedule replay matches the reference simulation ✓")


def run_accumulator() -> None:
    # y[n] = x[n] + y[n-1]: one node, one self-loop register
    dfg = DFG(name="accumulator")
    dfg.add_node("y", op="add")
    dfg.add_edge("y", "y", 1)
    table = random_table(dfg.dag(), num_types=2, seed=1)
    deadline = min_completion_time(dfg.dag(), table)
    result = synthesize(dfg, table, deadline)

    xs = [1.0, 2.0, 3.0, 4.0, 5.0]
    reference = simulate(dfg, len(xs), inputs={"y": xs})
    replay = simulate_schedule(
        dfg, table, result.assignment, result.schedule, len(xs),
        inputs={"y": xs},
    )
    print(f"\n[{dfg.name}] running sum of {xs}:")
    print(f"  y = {reference['y']}")
    assert reference["y"] == [1.0, 3.0, 6.0, 10.0, 15.0]
    assert replay == reference
    print("  schedule replay matches the reference simulation ✓")


if __name__ == "__main__":
    run_fir()
    run_accumulator()
