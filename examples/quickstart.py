#!/usr/bin/env python3
"""Quickstart: synthesize a small DSP kernel on a heterogeneous FU library.

Builds the HAL differential-equation-solver benchmark, attaches a
3-type time/cost table (type F1 fastest & most expensive, F3 slowest &
cheapest), and runs the paper's two-phase flow:

1. `DFG_Assign_*` picks an FU type per operation minimizing total cost
   under the timing constraint;
2. `Min_R_Scheduling` builds a static schedule and a minimal FU
   configuration.

Run:  python examples/quickstart.py
"""

from repro import min_completion_time
from repro.fu import random_table
from repro.suite import differential_equation_solver
from repro.synthesis import synthesize


def main() -> None:
    dfg = differential_equation_solver().dag()
    table = random_table(dfg, num_types=3, seed=0)

    floor = min_completion_time(dfg, table)
    deadline = floor + 3
    print(f"benchmark  : {dfg.name} ({len(dfg)} operations)")
    print(f"deadline   : {deadline} steps (minimum possible {floor})")

    result = synthesize(dfg, table, deadline)
    result.verify(dfg, table)

    print(f"algorithm  : {result.assign_result.algorithm}")
    print(f"system cost: {result.cost:.1f}")
    print(f"configuration: {result.configuration.label()} "
          f"(lower bound {result.lower_bound.label()})")
    print("\nassignment and schedule:")
    for node, op in sorted(result.schedule.ops.items(), key=lambda kv: kv[1].start):
        k = op.fu_type
        t = table.time(node, k)
        print(
            f"  {node:>4}  {dfg.op(node):>3}  F{k + 1}#{op.fu_index}  "
            f"steps {op.start:2d}..{op.start + t - 1:2d}  "
            f"cost {table.cost(node, k):4.1f}"
        )

    # Compare against the greedy baseline and the certified optimum.
    from repro import exact_assign, greedy_assign

    greedy = greedy_assign(dfg, table, deadline)
    exact = exact_assign(dfg, table, deadline)
    saving = (greedy.cost - result.cost) / greedy.cost
    print(f"\ngreedy would cost {greedy.cost:.1f} "
          f"({saving:.1%} more expensive than our assignment)")
    print(f"certified optimum is {exact.cost:.1f}")


if __name__ == "__main__":
    main()
