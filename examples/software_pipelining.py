#!/usr/bin/env python3
"""Software pipelining of a cyclic DSP loop: three throughput levels.

The paper's DFGs are loop bodies; how fast the loop *iterates* depends
on how you schedule across iterations.  This example takes a biquad
IIR section under a fixed 2+2-FU configuration and walks up the
throughput ladder:

1. the **static schedule** of the DAG part — one iteration at a time;
2. **rotation scheduling** — retime the first row down an iteration
   and reschedule, repeatedly (Chao–LaPaugh–Sha);
3. **iterative modulo scheduling** — the steady-state initiation
   interval (II), checked against its theoretical floor
   ``max(ResMII, RecMII)``.

Run:  python examples/software_pipelining.py
"""

from repro.assign import Assignment
from repro.fu import random_table
from repro.retiming import modulo_schedule, rec_mii, res_mii, rotation_schedule
from repro.sched import Configuration, list_schedule
from repro.suite import iir_biquad_cascade


def main() -> None:
    dfg = iir_biquad_cascade(2)
    table = random_table(dfg, num_types=2, seed=3)
    assignment = Assignment.cheapest(dfg, table)
    config = Configuration.of([3, 3])
    times = assignment.execution_times(dfg, table)
    print(f"benchmark: {dfg.name} — {len(dfg)} ops, "
          f"{dfg.total_delays()} registers, configuration {config.label()}")

    static = list_schedule(
        dfg.dag(), table, assignment=assignment, configuration=config
    )
    print(f"\n[1] static schedule     : one iteration per "
          f"{static.makespan(table)} steps")

    rot = rotation_schedule(dfg, table, assignment, config, rounds=12)
    print(f"[2] rotation scheduling : one iteration per "
          f"{rot.best_length} steps "
          f"(history {rot.history})")

    floor = max(
        res_mii(dfg, table, assignment, config),
        rec_mii(dfg, table, assignment),
    )
    ms = modulo_schedule(dfg, table, assignment, config)
    stages = ms.stage_count(times)
    print(f"[3] modulo scheduling   : one iteration per {ms.ii} steps "
          f"(floor {floor}, {stages} pipeline stages)")

    speedup = static.makespan(table) / ms.ii
    print(f"\nthroughput gain over the static schedule: {speedup:.2f}x")
    assert ms.ii <= rot.best_length <= static.makespan(table)


if __name__ == "__main__":
    main()
