#!/usr/bin/env python3
"""Reliability-driven synthesis (Section 2's second cost semantics).

Fast FU types fail more often; the probability that an 8-stage lattice
filter iteration completes without a failure is
``exp(-Σ λ_type(v) · t_type(v))``.  Minimizing the summed reliability
cost under a deadline therefore *maximizes* system reliability — the
exact formulation of the reliability-driven assignment works the paper
builds on ([He et al.], [Srinivasan & Jha]).

This example sweeps the deadline and shows the reliability/latency
trade-off curve, comparing the DP assignment against always-fastest
and against the greedy baseline.

Run:  python examples/reliability_driven.py
"""

from repro import Assignment, greedy_assign, min_completion_time, tree_assign
from repro.fu import default_library, reliability_table, system_reliability
from repro.suite import lattice_filter


def main() -> None:
    dfg = lattice_filter(8).dag()
    # A steeper failure-rate ladder than the default so the
    # reliability/latency trade-off is visible at print precision:
    # the fast type fails 10x more often than the slow one.
    library = default_library(3, failure_rates=[5e-3, 1.5e-3, 5e-4])
    # Widen the base workloads (finer-grained cycles) so the speed
    # ladder yields a real spread of execution times per operation.
    table = reliability_table(dfg, library, op_work={"mul": 6, "add": 3})

    floor = min_completion_time(dfg, table)
    print(f"benchmark: {dfg.name} ({len(dfg)} ops), "
          f"library: {', '.join(library.names)}")
    print(f"minimum feasible deadline: {floor} steps\n")
    print(f"{'deadline':>8}  {'R(optimal)':>12}  {'R(greedy)':>12}  "
          f"{'R(all-fastest)':>14}")

    fastest = Assignment.fastest(dfg, table)
    r_fast = system_reliability(fastest.total_cost(dfg, table))

    for extra in (0, 1, 2, 3, 4, 6, 8):
        deadline = floor + extra
        optimal = tree_assign(dfg, table, deadline)
        greedy = greedy_assign(dfg, table, deadline)
        r_opt = system_reliability(optimal.cost)
        r_greedy = system_reliability(greedy.cost)
        print(f"{deadline:>8}  {r_opt:>12.6f}  {r_greedy:>12.6f}  "
              f"{r_fast:>14.6f}")
        assert r_opt >= r_greedy - 1e-12, "DP must dominate greedy"

    print("\nReading: relaxing the deadline lets the assignment move "
          "operations onto slower, more reliable units; the optimal "
          "column climbs fastest because Tree_Assign is exact on this "
          "tree-shaped benchmark.")


if __name__ == "__main__":
    main()
