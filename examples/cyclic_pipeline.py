#!/usr/bin/env python3
"""Cyclic DFGs end to end: retiming + unfolding + two-phase synthesis.

The paper's DFG model is a loop body: feedback edges carry delays and
only the zero-delay DAG part constrains the static schedule.  This
example takes a cyclic IIR biquad cascade and shows how the cyclic-DFG
substrate widens what the assignment phase can do:

1. the raw DAG part has some minimum feasible deadline;
2. **retiming** moves registers to shorten the critical zero-delay
   path, making tighter deadlines feasible at the same cost model;
3. **unfolding** schedules two iterations at once, exposing
   cross-iteration parallelism that phase 2 can pack onto the FUs.

Run:  python examples/cyclic_pipeline.py
"""

from repro import min_completion_time
from repro.fu import energy_table, default_library, random_table
from repro.retiming import apply_retiming, cycle_period, min_cycle_period, unfold
from repro.suite import iir_biquad_cascade
from repro.synthesis import synthesize


def main() -> None:
    cyclic = iir_biquad_cascade(2)
    library = default_library(3)
    table = energy_table(cyclic, library)
    print(f"benchmark: {cyclic.name} — {len(cyclic)} ops, "
          f"{cyclic.total_delays()} registers, cyclic={cyclic.has_cycle()}")

    # --- 1. raw DAG part -------------------------------------------------
    dag = cyclic.dag()
    floor = min_completion_time(dag, table)
    print(f"\n[1] raw DAG part: minimum feasible deadline {floor}")
    result = synthesize(cyclic, table, floor + 2)
    print(f"    synthesized at {floor + 2}: cost {result.cost:.1f}, "
          f"configuration {result.configuration.label()}")

    # --- 2. retiming ------------------------------------------------------
    min_times = table.min_times(cyclic.nodes())
    period, retiming = min_cycle_period(cyclic, min_times)
    retimed = apply_retiming(cyclic, retiming)
    new_floor = min_completion_time(retimed.dag(), table)
    print(f"\n[2] retiming: cycle period {cycle_period(cyclic, min_times)} "
          f"-> {period}")
    print(f"    minimum feasible deadline now {new_floor}")
    result2 = synthesize(retimed, table, new_floor + 2)
    print(f"    synthesized at {new_floor + 2}: cost {result2.cost:.1f}, "
          f"configuration {result2.configuration.label()}")

    # --- 3. unfolding ------------------------------------------------------
    factor = 2
    unfolded = unfold(cyclic, factor)
    u_table = random_table(unfolded, num_types=3, seed=11)
    u_dag = unfolded.dag()
    u_floor = min_completion_time(u_dag, u_table)
    result3 = synthesize(unfolded, u_table, u_floor + 4)
    per_iter = result3.schedule.makespan(u_table) / factor
    print(f"\n[3] unfolding x{factor}: {len(unfolded)} ops per "
          f"super-iteration")
    print(f"    schedule makespan {result3.schedule.makespan(u_table)} "
          f"steps = {per_iter:.1f} steps/iteration, "
          f"configuration {result3.configuration.label()}")


if __name__ == "__main__":
    main()
