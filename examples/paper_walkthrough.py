#!/usr/bin/env python3
"""Walk through the paper's worked examples (Figures 1–3, 5 and 8).

* Figure 5 — `Path_Assign`'s dynamic-programming table on a 3-node
  simple path, printed budget by budget exactly like the figure;
* Figures 6/8 — `Tree_Assign` on the 5-node tree, with the forest
  cost curve;
* Figures 1–2 — the motivational comparison: a greedy assignment vs
  the optimal one under the same timing constraint;
* Figure 3 — two schedules for the same assignment: a naive
  one-FU-per-node binding vs `Min_R_Scheduling`'s configuration.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro import greedy_assign, tree_assign
from repro.assign.dpkernel import node_step, zero_curve
from repro.assign.path_assign import chain_order, path_assign
from repro.sched import Configuration, list_schedule, min_resource_schedule
from repro.suite.paper_example import (
    PAPER_EXAMPLE_DEADLINE,
    paper_path_example,
    paper_tree_example,
)


def show_path_dp() -> None:
    """Figure 5: the DP table of Path_Assign, row per node."""
    dfg, table = paper_path_example()
    deadline = 8
    print(f"=== Path_Assign DP table (deadline {deadline}) ===")
    header = "node | " + " ".join(f"j={j:<4d}" for j in range(deadline + 1))
    print(header)
    curve = zero_curve(deadline)
    for node in chain_order(dfg):
        curve, choice = node_step(curve, table.times(node), table.costs(node))
        cells = []
        for j in range(deadline + 1):
            if np.isfinite(curve[j]):
                cells.append(f"{curve[j]:<4.0f}F{choice[j] + 1}")
            else:
                cells.append("--   ")
        print(f"{node:>4} | " + " ".join(cells))
    result = path_assign(dfg, table, deadline)
    print(f"optimal cost {result.cost:.0f} via " +
          ", ".join(f"{n}->F{result.assignment[n] + 1}"
                    for n in chain_order(dfg)))
    print()


def show_tree_dp() -> None:
    """Figure 8: Tree_Assign on the 5-node tree."""
    dfg, table = paper_tree_example()
    from repro.assign.tree_assign import tree_cost_curve

    deadline = PAPER_EXAMPLE_DEADLINE
    curve = tree_cost_curve(dfg, table, deadline + 4)
    print(f"=== Tree_Assign cost curve for the 5-node tree ===")
    for j, cost in enumerate(curve):
        label = f"{cost:.0f}" if np.isfinite(cost) else "infeasible"
        marker = "  <- paper's deadline" if j == deadline else ""
        print(f"  within {j:2d} steps: {label}{marker}")
    result = tree_assign(dfg, table, deadline)
    print("optimal assignment: " +
          ", ".join(f"{n}->F{result.assignment[n] + 1}"
                    for n in sorted(result.assignment, key=str)))
    print()


def show_motivational_comparison() -> None:
    """Figures 1–2: greedy vs optimal under the same constraint."""
    dfg, table = paper_tree_example()
    deadline = PAPER_EXAMPLE_DEADLINE
    greedy = greedy_assign(dfg, table, deadline)
    optimal = tree_assign(dfg, table, deadline)
    print(f"=== Motivational example (deadline {deadline}) ===")
    print(f"Assignment 1 (greedy) : cost {greedy.cost:.0f}")
    print(f"Assignment 2 (optimal): cost {optimal.cost:.0f}")
    if greedy.cost > optimal.cost:
        print(f"the optimal assignment is "
              f"{(greedy.cost - optimal.cost) / greedy.cost:.0%} cheaper")
    print()


def show_schedules() -> None:
    """Figure 3: two schedules, two configurations, same assignment."""
    dfg, table = paper_tree_example()
    deadline = PAPER_EXAMPLE_DEADLINE
    assignment = tree_assign(dfg, table, deadline).assignment

    naive_counts = [0] * table.num_types
    for node in dfg.nodes():
        naive_counts[assignment[node]] += 1
    naive = list_schedule(
        dfg, table, assignment=assignment,
        configuration=Configuration.of(naive_counts),
    )
    smart = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
    print("=== Figure 3: schedules for the optimal assignment ===")
    print(f"naive binding : {naive.configuration.label()} "
          f"({naive.configuration.total_units()} FUs)")
    print(f"Min_R_Schedule: {smart.configuration.label()} "
          f"({smart.configuration.total_units()} FUs), "
          f"makespan {smart.makespan(table)} <= {deadline}")
    for node, op in sorted(smart.ops.items(), key=lambda kv: kv[1].start):
        t = table.time(node, op.fu_type)
        print(f"  step {op.start}..{op.start + t - 1}  "
              f"F{op.fu_type + 1}#{op.fu_index}  {node}")


if __name__ == "__main__":
    show_path_dp()
    show_tree_dp()
    show_motivational_comparison()
    show_schedules()
