"""Unit tests for the two-phase synthesis pipeline."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.errors import CyclicDependencyError, InfeasibleError, ReproError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.suite import get_benchmark, iir_biquad_cascade
from repro.synthesis import ALGORITHMS, SynthesisResult, auto_algorithm, synthesize


class TestAutoAlgorithm:
    def test_path(self, chain3):
        assert auto_algorithm(chain3) == "path"

    def test_tree(self, small_tree):
        assert auto_algorithm(small_tree) == "tree"

    def test_in_tree(self, small_tree):
        assert auto_algorithm(small_tree.transpose()) == "tree"

    def test_dag(self, wide_dag):
        assert auto_algorithm(wide_dag) == "repeat"


class TestSynthesize:
    @pytest.mark.parametrize("algorithm", [None, "greedy", "once", "repeat", "exact"])
    def test_all_algorithms_verify(self, wide_dag, algorithm):
        table = random_table(wide_dag, seed=0)
        deadline = min_completion_time(wide_dag, table) + 5
        result = synthesize(wide_dag, table, deadline, algorithm=algorithm)
        result.verify(wide_dag, table)

    def test_result_fields_consistent(self, wide_dag):
        table = random_table(wide_dag, seed=1)
        deadline = min_completion_time(wide_dag, table) + 4
        result = synthesize(wide_dag, table, deadline)
        assert result.cost == result.assign_result.cost
        assert result.configuration == result.schedule.configuration
        assert result.lower_bound.dominates(result.configuration)
        assert result.schedule.makespan(table) <= deadline

    def test_unknown_algorithm(self, wide_dag):
        table = random_table(wide_dag, seed=2)
        with pytest.raises(ReproError, match="unknown algorithm"):
            synthesize(wide_dag, table, 100, algorithm="magic")

    def test_infeasible_deadline(self, wide_dag):
        table = random_table(wide_dag, seed=3)
        floor = min_completion_time(wide_dag, table)
        with pytest.raises(InfeasibleError):
            synthesize(wide_dag, table, floor - 1)

    def test_cyclic_input_uses_dag_part(self):
        cyclic = iir_biquad_cascade(1)
        dag = cyclic.dag()
        table = random_table(cyclic, seed=4)  # covers all nodes
        deadline = min_completion_time(dag, table) + 4
        result = synthesize(cyclic, table, deadline)
        result.verify(dag, table)

    def test_zero_delay_cycle_rejected(self):
        bad = DFG.from_edges([("a", "b", 0), ("b", "a", 0)])
        from repro.fu.table import TimeCostTable

        table = TimeCostTable.from_rows(
            {"a": ([1], [1.0]), "b": ([1], [1.0])}
        )
        with pytest.raises(CyclicDependencyError):
            synthesize(bad, table, 10)

    def test_exact_never_worse_than_heuristics(self, wide_dag):
        table = random_table(wide_dag, seed=5)
        deadline = min_completion_time(wide_dag, table) + 6
        exact = synthesize(wide_dag, table, deadline, algorithm="exact")
        for name in ("greedy", "once", "repeat"):
            heur = synthesize(wide_dag, table, deadline, algorithm=name)
            assert heur.cost >= exact.cost - 1e-9

    def test_algorithm_registry_complete(self):
        assert set(ALGORITHMS) == {
            "path",
            "tree",
            "sp",
            "once",
            "repeat",
            "greedy",
            "downgrade",
            "exact",
            "portfolio",
        }

    def test_force_directed_scheduler_option(self, wide_dag):
        table = random_table(wide_dag, seed=9)
        deadline = min_completion_time(wide_dag, table) + 5
        result = synthesize(
            wide_dag, table, deadline, scheduler="force_directed"
        )
        result.verify(wide_dag, table)

    def test_unknown_scheduler(self, wide_dag):
        table = random_table(wide_dag, seed=9)
        with pytest.raises(ReproError, match="scheduler"):
            synthesize(wide_dag, table, 100, scheduler="magic")

    @pytest.mark.parametrize("name", ["lattice4", "diffeq", "elliptic"])
    def test_benchmarks_roundtrip(self, name):
        dag = get_benchmark(name).dag()
        table = random_table(dag, seed=6)
        deadline = min_completion_time(dag, table) + 2
        result = synthesize(dag, table, deadline)
        result.verify(dag, table)
        # the reported schedule really uses the phase-1 assignment
        for node in dag.nodes():
            assert result.schedule.ops[node].fu_type == result.assignment[node]
