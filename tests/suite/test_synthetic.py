"""Unit tests for the synthetic DFG generators."""

import pytest

from repro.errors import GraphError
from repro.graph.classify import is_out_forest, is_simple_path
from repro.suite.synthetic import layered_dag, random_dag, random_path, random_tree


class TestRandomPath:
    def test_is_simple_path(self):
        for n in (1, 2, 10):
            assert is_simple_path(random_path(n, seed=0))

    def test_deterministic(self):
        g1, g2 = random_path(6, seed=3), random_path(6, seed=3)
        assert g1 == g2

    def test_bad_size(self):
        with pytest.raises(GraphError):
            random_path(0)


class TestRandomTree:
    def test_out_tree_shape(self):
        for seed in range(5):
            assert is_out_forest(random_tree(12, seed=seed, out_tree=True))

    def test_in_tree_shape(self):
        from repro.graph.classify import is_in_forest

        for seed in range(5):
            assert is_in_forest(random_tree(12, seed=seed, out_tree=False))

    def test_connected(self):
        g = random_tree(20, seed=1)
        assert len(g.roots()) == 1

    def test_node_count(self):
        assert len(random_tree(15, seed=0)) == 15


class TestRandomDag:
    def test_acyclic(self):
        for seed in range(5):
            assert not random_dag(15, seed=seed).has_cycle()

    def test_max_parents_cap(self):
        g = random_dag(20, edge_prob=0.9, seed=0, max_parents=2)
        assert all(g.in_degree(n) <= 2 for n in g.nodes())

    def test_edge_prob_zero(self):
        g = random_dag(10, edge_prob=0.0, seed=0)
        assert g.num_edges() == 0

    def test_bad_prob(self):
        with pytest.raises(GraphError):
            random_dag(5, edge_prob=1.5)

    def test_deterministic(self):
        assert random_dag(10, seed=7) == random_dag(10, seed=7)


class TestLayeredDag:
    def test_size(self):
        g = layered_dag(4, 3, seed=0)
        assert len(g) == 12

    def test_edges_only_between_adjacent_layers(self):
        g = layered_dag(5, 4, seed=1)
        for u, v, _ in g.edges():
            lu = int(str(u)[1:].split("n")[0])
            lv = int(str(v)[1:].split("n")[0])
            assert lv == lu + 1

    def test_acyclic(self):
        assert not layered_dag(6, 5, seed=2).has_cycle()

    def test_bad_params(self):
        with pytest.raises(GraphError):
            layered_dag(0, 3)
