"""Unit tests for the plain-text DFG exchange format."""

import pytest

from repro.errors import GraphError
from repro.fu.random_tables import random_table
from repro.suite.io_formats import dump, dumps, load, loads
from repro.suite.registry import PAPER_BENCHMARKS, get_benchmark


class TestRoundtrip:
    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_graph_roundtrip(self, name):
        dfg = get_benchmark(name)
        back, table = loads(dumps(dfg))
        assert back == dfg
        assert table is None

    def test_table_roundtrip(self):
        dfg = get_benchmark("diffeq")
        table = random_table(dfg, num_types=3, seed=1)
        back, back_table = loads(dumps(dfg, table))
        assert back == dfg
        assert back_table is not None
        for n in dfg.nodes():
            assert list(back_table.times(n)) == list(table.times(n))
            assert list(back_table.costs(n)) == list(table.costs(n))

    def test_delays_roundtrip(self):
        dfg = get_benchmark("biquad2")
        back, _ = loads(dumps(dfg))
        assert back == dfg
        assert back.total_delays() == dfg.total_delays()

    def test_file_roundtrip(self, tmp_path):
        dfg = get_benchmark("diffeq")
        table = random_table(dfg, num_types=2, seed=2)
        path = str(tmp_path / "x.dfg")
        dump(path, dfg, table)
        back, back_table = load(path)
        assert back == dfg
        assert back_table.num_types == 2


class TestParsing:
    def test_comments_and_blanks(self):
        dfg, table = loads(
            """
            # a comment
            dfg demo

            node a mul   # trailing comment
            edge a b
            """
        )
        assert dfg.name == "demo"
        assert dfg.op("a") == "mul"
        assert dfg.op("b") == "op"  # implicit node
        assert table is None

    def test_edge_with_delay(self):
        dfg, _ = loads("edge a b 3")
        assert dfg.edges() == [("a", "b", 3)]

    def test_rows_build_table(self):
        _, table = loads(
            "node a\nrow a times 1 2 costs 9 4\n"
        )
        assert table.num_types == 2
        assert table.time("a", 1) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "bogus directive",
            "dfg",  # missing name
            "node",  # missing id
            "edge a",  # missing dst
            "edge a b x",  # bad delay
            "row a costs 1 times 1",  # sections out of order
            "row a times 1 2 costs 1",  # length mismatch
        ],
    )
    def test_malformed_lines(self, text):
        with pytest.raises(GraphError, match="line 1"):
            loads(text)

    def test_rows_disagree_on_types(self):
        with pytest.raises(GraphError, match="FU type count"):
            loads(
                "node a\nnode b\n"
                "row a times 1 costs 1\n"
                "row b times 1 2 costs 1 2\n"
            )

    def test_row_for_unknown_node(self):
        with pytest.raises(GraphError, match="unknown nodes"):
            loads("node a\nrow a times 1 costs 1\nrow z times 1 costs 1\n")

    def test_missing_rows_for_some_nodes(self):
        with pytest.raises(GraphError, match="missing"):
            loads("node a\nnode b\nrow a times 1 costs 1\n")

    def test_dumps_requires_table_coverage(self):
        from repro.fu.table import TimeCostTable
        from repro.graph.dfg import DFG
        from repro.errors import TableError

        dfg = DFG.from_edges([("a", "b")])
        table = TimeCostTable.from_rows({"a": ([1], [1.0])})
        with pytest.raises(TableError):
            dumps(dfg, table)


class TestEndToEnd:
    def test_loaded_graph_synthesizes(self, tmp_path):
        from repro.assign.assignment import min_completion_time
        from repro.synthesis import synthesize

        dfg = get_benchmark("lattice4")
        table = random_table(dfg, num_types=3, seed=3)
        path = str(tmp_path / "l4.dfg")
        dump(path, dfg, table)
        loaded, loaded_table = load(path)
        deadline = min_completion_time(loaded.dag(), loaded_table) + 3
        result = synthesize(loaded, loaded_table, deadline)
        result.verify(loaded.dag(), loaded_table)
