"""Unit tests for the 8-point DCT benchmark graph."""

import pytest

from repro.assign.dfg_assign import choose_expansion, dfg_assign_repeat
from repro.assign.assignment import min_completion_time
from repro.fu.random_tables import random_table
from repro.graph.analysis import profile
from repro.suite.dct import dct8


class TestStructure:
    def test_operation_mix(self):
        g = dct8()
        p = profile(g)
        assert p.nodes == 48
        assert p.ops == {"add": 20, "mul": 16, "sub": 12}

    def test_eight_inputs_eight_outputs(self):
        g = dct8()
        assert len(g.dag().roots()) == 8
        assert len(g.dag().leaves()) == 8

    def test_dense_sharing(self):
        """Every butterfly fans out: many more paths than nodes."""
        p = profile(dct8())
        assert p.root_leaf_paths == 64
        assert p.extra_copies_on_expansion > p.nodes

    def test_acyclic(self):
        assert not dct8().has_cycle()


class TestSynthesis:
    def test_expansion_stays_bounded(self):
        expansion = choose_expansion(dct8().dag())
        assert len(expansion) < 500

    def test_end_to_end(self):
        dag = dct8().dag()
        table = random_table(dag, num_types=3, seed=24)
        floor = min_completion_time(dag, table)
        for deadline in (floor, floor + 6):
            result = dfg_assign_repeat(dag, table, deadline)
            result.verify(dag, table)

    def test_heuristics_beat_greedy_somewhere(self):
        from repro.assign.greedy import greedy_assign

        dag = dct8().dag()
        table = random_table(dag, num_types=3, seed=24)
        floor = min_completion_time(dag, table)
        wins = 0
        for deadline in range(floor, floor + 8):
            r = dfg_assign_repeat(dag, table, deadline)
            g = greedy_assign(dag, table, deadline)
            if r.cost < g.cost - 1e-9:
                wins += 1
        assert wins >= 2

    def test_schedulable(self):
        from repro.sched import min_resource_schedule

        dag = dct8().dag()
        table = random_table(dag, num_types=3, seed=24)
        deadline = min_completion_time(dag, table) + 4
        assignment = dfg_assign_repeat(dag, table, deadline).assignment
        schedule = min_resource_schedule(dag, table, assignment=assignment, deadline=deadline)
        schedule.validate(dag, table, assignment)
