"""Unit tests for the DSP benchmark graphs (the paper's six + extras)."""

import pytest

from repro.assign.dfg_expand import dfg_expand
from repro.errors import GraphError, ReproError
from repro.graph.classify import is_in_forest, is_out_forest
from repro.suite import (
    PAPER_BENCHMARKS,
    benchmark_names,
    differential_equation_solver,
    elliptic_filter,
    fft_butterfly,
    fir_filter,
    get_benchmark,
    iir_biquad_cascade,
    lattice_filter,
    rls_laguerre_filter,
    volterra_filter,
)


class TestRegistry:
    def test_paper_benchmarks_present(self):
        for name in PAPER_BENCHMARKS:
            dfg = get_benchmark(name)
            assert len(dfg) > 0

    def test_unknown_name(self):
        with pytest.raises(ReproError, match="available"):
            get_benchmark("nope")

    def test_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)

    def test_factories_return_fresh_graphs(self):
        g1, g2 = get_benchmark("diffeq"), get_benchmark("diffeq")
        g1.add_node("extra")
        assert "extra" not in g2

    def test_extras_registered(self):
        for name in ("dct8", "fft3", "fir8", "biquad2"):
            assert name in benchmark_names()


class TestLattice:
    def test_node_count(self):
        assert len(lattice_filter(4)) == 17
        assert len(lattice_filter(8)) == 33

    def test_is_tree(self):
        for k in (1, 4, 8):
            g = lattice_filter(k)
            assert is_in_forest(g)

    def test_operation_mix(self):
        g = lattice_filter(4)
        ops = [g.op(n) for n in g.nodes()]
        assert ops.count("mul") == 8
        assert ops.count("add") == 9

    def test_bad_stage_count(self):
        with pytest.raises(GraphError):
            lattice_filter(0)


class TestVolterra:
    def test_default_is_tree(self):
        g = volterra_filter()
        assert is_in_forest(g)

    def test_mul_heavy(self):
        g = volterra_filter()
        ops = [g.op(n) for n in g.nodes()]
        assert ops.count("mul") == 15

    def test_bad_params(self):
        with pytest.raises(GraphError):
            volterra_filter(linear_taps=0)


class TestDiffeq:
    def test_canonical_op_mix(self):
        g = differential_equation_solver()
        ops = [g.op(n) for n in g.nodes()]
        assert len(g) == 11
        assert ops.count("mul") == 6
        assert ops.count("sub") == 2
        assert ops.count("add") == 2
        assert ops.count("cmp") == 1

    def test_three_duplicated_nodes_forward(self):
        """The paper's property: three duplicated nodes."""
        g = differential_equation_solver()
        tree = dfg_expand(g)
        assert sorted(map(str, tree.duplicated_originals())) == ["m3", "s1", "s2"]


class TestElliptic:
    def test_published_op_mix(self):
        g = elliptic_filter()
        ops = [g.op(n) for n in g.nodes()]
        assert len(g) == 34
        assert ops.count("add") == 26
        assert ops.count("mul") == 8

    def test_nine_duplicated_nodes(self):
        """Paper: 'elliptic filter has 9 duplicated nodes'."""
        g = elliptic_filter()
        fwd = dfg_expand(g)
        rev = dfg_expand(g.transpose())
        assert len(fwd.duplicated_originals()) == 9
        assert len(rev.duplicated_originals()) == 9

    def test_not_a_tree(self):
        g = elliptic_filter()
        assert not is_in_forest(g) and not is_out_forest(g)


class TestRlsLaguerre:
    def test_three_duplicated_nodes_in_chosen_tree(self):
        """Paper: RLS-laguerre has three duplicated nodes."""
        from repro.assign.dfg_assign import choose_expansion

        g = rls_laguerre_filter()
        chosen = choose_expansion(g)
        assert len(chosen.duplicated_originals()) == 3

    def test_not_a_tree(self):
        g = rls_laguerre_filter()
        assert not is_in_forest(g) and not is_out_forest(g)

    def test_bad_stages(self):
        with pytest.raises(GraphError):
            rls_laguerre_filter(0)


class TestExtras:
    def test_fir_is_tree(self):
        g = fir_filter(8)
        assert is_in_forest(g)
        assert len(g) == 15

    def test_fir_single_tap(self):
        assert len(fir_filter(1)) == 1

    def test_biquad_is_cyclic_with_delays(self):
        g = iir_biquad_cascade(2)
        assert g.has_cycle()
        assert g.total_delays() > 0
        dag = g.dag()  # must extract cleanly
        assert not dag.has_cycle()

    def test_fft_path_count_grows(self):
        from repro.graph.paths import count_root_leaf_paths

        assert count_root_leaf_paths(fft_butterfly(3).dag()) > count_root_leaf_paths(
            fft_butterfly(2).dag()
        )

    def test_bad_params(self):
        with pytest.raises(GraphError):
            fir_filter(0)
        with pytest.raises(GraphError):
            iir_biquad_cascade(0)
        with pytest.raises(GraphError):
            fft_butterfly(0)


class TestAllBenchmarksSynthesize:
    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_end_to_end(self, name):
        from repro.assign.assignment import min_completion_time
        from repro.fu.random_tables import random_table
        from repro.synthesis import synthesize

        dag = get_benchmark(name).dag()
        table = random_table(dag, num_types=3, seed=0)
        deadline = min_completion_time(dag, table) + 3
        result = synthesize(dag, table, deadline)
        result.verify(dag, table)
