"""Unit tests for experiment-row exporters."""

import csv
import io
import json

import pytest

from repro.errors import ReproError
from repro.report.experiments import ExperimentRow
from repro.report.export import rows_to_csv, rows_to_json, rows_to_markdown


@pytest.fixture
def rows():
    return [
        ExperimentRow(
            benchmark="diffeq",
            deadline=10,
            greedy_cost=120.0,
            tree_cost=100.0,
            once_cost=100.0,
            repeat_cost=100.0,
            exact_cost=None,
            configuration="1F1 2F2",
        ),
        ExperimentRow(
            benchmark="elliptic",
            deadline=30,
            greedy_cost=400.0,
            tree_cost=None,
            once_cost=360.0,
            repeat_cost=350.0,
            exact_cost=349.0,
            configuration="2F1 1F3",
        ),
    ]


class TestCsv:
    def test_roundtrip(self, rows):
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["benchmark"] == "diffeq"
        assert float(parsed[1]["repeat_cost"]) == 350.0

    def test_optional_columns_blank(self, rows):
        parsed = list(csv.DictReader(io.StringIO(rows_to_csv(rows))))
        assert parsed[0]["exact_cost"] == ""
        assert parsed[1]["tree_cost"] == ""

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            rows_to_csv([])


class TestJson:
    def test_parseable_and_typed(self, rows):
        data = json.loads(rows_to_json(rows))
        assert data[0]["tree_cost"] == 100.0
        assert data[1]["tree_cost"] is None
        assert data[1]["exact_cost"] == 349.0

    def test_reductions_included(self, rows):
        data = json.loads(rows_to_json(rows))
        assert data[0]["once_reduction"] == pytest.approx(20 / 120, abs=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            rows_to_json([])


class TestLatex:
    def test_structure(self, rows):
        from repro.report.export import rows_to_latex

        tex = rows_to_latex(rows, caption="Table 2 reproduction")
        assert tex.startswith(r"\begin{table}")
        assert tex.rstrip().endswith(r"\end{table}")
        for marker in (r"\toprule", r"\midrule", r"\bottomrule", r"\caption"):
            assert marker in tex

    def test_underscores_escaped(self, rows):
        from repro.report.export import rows_to_latex

        tex = rows_to_latex(
            [rows[1]]
        )  # elliptic has no underscore; craft one via configuration
        assert "\\_" not in tex or "_" not in tex.replace("\\_", "")

    def test_row_count(self, rows):
        from repro.report.export import rows_to_latex

        tex = rows_to_latex(rows)
        assert tex.count(r"\\") == len(rows) + 1  # + header row

    def test_empty_rejected(self):
        from repro.report.export import rows_to_latex
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            rows_to_latex([])


class TestMarkdown:
    def test_table_shape(self, rows):
        md = rows_to_markdown(rows, title="Table 2")
        lines = md.splitlines()
        assert lines[0] == "**Table 2**"
        header = [l for l in lines if l.startswith("| benchmark")][0]
        assert header.count("|") == 10
        assert md.count("| diffeq |") == 1

    def test_missing_tree_cost_dash(self, rows):
        md = rows_to_markdown(rows)
        assert "| - |" in md

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            rows_to_markdown([])
