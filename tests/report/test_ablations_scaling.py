"""Unit tests for the ablation and scaling studies."""

import pytest

from repro.report.ablations import (
    fix_order_ablation,
    lower_bound_ablation,
    tree_choice_ablation,
)
from repro.report.scaling import optimality_gap_sweep, runtime_sweep


class TestTreeChoice:
    @pytest.fixture(scope="class")
    def results(self):
        return tree_choice_ablation("elliptic", seed=24)

    def test_smaller_policy_matches_one_direction(self, results):
        for r in results:
            assert r.smaller_cost in (
                pytest.approx(r.forward_cost),
                pytest.approx(r.transposed_cost),
            )

    def test_all_feasible_costs_positive(self, results):
        for r in results:
            assert r.forward_cost > 0 and r.transposed_cost > 0

    def test_best_property(self, results):
        for r in results:
            assert r.best == min(r.forward_cost, r.transposed_cost)


class TestFixOrder:
    def test_policies_all_feasible(self):
        for r in fix_order_ablation("elliptic", seed=24):
            assert r.most_copied_first > 0
            assert r.fewest_copied_first > 0
            assert r.insertion_order > 0

    def test_tree_benchmark_is_order_insensitive(self):
        # no duplicated nodes -> all orders identical
        for r in fix_order_ablation("lattice4", seed=24):
            assert r.most_copied_first == pytest.approx(r.fewest_copied_first)
            assert r.most_copied_first == pytest.approx(r.insertion_order)


class TestLowerBound:
    def test_gap_non_negative(self):
        for r in lower_bound_ablation("elliptic", seed=24):
            assert r.gap >= 0

    def test_from_zero_never_below_bound(self):
        for r in lower_bound_ablation("diffeq", seed=24):
            assert r.from_zero_units >= r.bound_units


class TestScaling:
    def test_runtime_sweep_records(self):
        records = runtime_sweep(sizes=(10, 20), seed=1)
        assert len(records) == 2
        for rec in records:
            assert rec.seconds["once"] >= 0
            assert {"greedy", "once", "repeat"} <= set(rec.seconds)

    def test_optimality_gaps_non_negative(self):
        records = optimality_gap_sweep(trials=4, nodes=9, seed=5)
        for rec in records:
            for which in ("greedy", "once", "repeat"):
                assert rec.gap(which) >= -1e-9

    def test_heuristics_usually_beat_greedy(self):
        records = optimality_gap_sweep(trials=6, nodes=10, seed=9)
        avg_greedy = sum(r.gap("greedy") for r in records) / len(records)
        avg_repeat = sum(r.gap("repeat") for r in records) / len(records)
        assert avg_repeat <= avg_greedy + 1e-9
