"""Unit tests for the robustness study."""

import pytest

from repro.errors import ReproError
from repro.report.robustness import RobustnessSummary, robustness_study


class TestSummary:
    @pytest.fixture
    def summary(self):
        return RobustnessSummary(
            seeds=[1, 2, 3],
            once_reductions=[0.05, 0.06, 0.04],
            repeat_reductions=[0.06, 0.06, 0.05],
        )

    def test_means(self, summary):
        assert summary.once_mean == pytest.approx(0.05)
        assert summary.repeat_mean == pytest.approx(0.0566666, abs=1e-4)

    def test_claim_rates(self, summary):
        rates = summary.claim_rates()
        assert rates == {
            "once_positive": 1.0,
            "repeat_positive": 1.0,
            "repeat_ge_once": 1.0,
        }

    def test_claim_rates_partial(self):
        s = RobustnessSummary(
            seeds=[1, 2],
            once_reductions=[0.05, -0.01],
            repeat_reductions=[0.04, 0.02],
        )
        rates = s.claim_rates()
        assert rates["once_positive"] == 0.5
        assert rates["repeat_ge_once"] == 0.5

    def test_describe(self, summary):
        text = summary.describe()
        assert "3 seeds" in text
        assert "±" in text and "%" in text


class TestStudy:
    def test_runs_over_seeds(self):
        summary = robustness_study(seeds=(5, 6), count=2)
        assert summary.seeds == [5, 6]
        assert len(summary.once_reductions) == 2

    def test_empty_seeds_rejected(self):
        with pytest.raises(ReproError):
            robustness_study(seeds=())
