"""Unit tests for table rendering."""

import pytest

from repro.report.tables import format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.177) == "17.7%"

    def test_zero(self):
        assert format_percent(0.0) == "0.0%"

    def test_digits(self):
        assert format_percent(0.12345, digits=2) == "12.35%"

    def test_negative(self):
        assert format_percent(-0.05) == "-5.0%"


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="demo"
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_floats_two_decimals(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.23" in out

    def test_numeric_right_aligned(self):
        out = format_table(["v"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_row_width_mismatch(self):
        from repro.errors import ReportError

        with pytest.raises(ReportError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
