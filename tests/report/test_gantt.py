"""Unit tests for the ASCII Gantt renderer."""

import pytest

from repro.assign.assignment import Assignment
from repro.errors import ScheduleError
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.report.gantt import render_gantt
from repro.sched.schedule import Configuration, Schedule, ScheduledOp


@pytest.fixture
def instance():
    dfg = DFG.from_edges([("a", "b")])
    table = TimeCostTable.from_rows(
        {"a": ([2, 1], [1.0, 2.0]), "b": ([1, 3], [1.0, 2.0])}
    )
    assignment = Assignment.of({"a": 0, "b": 1})
    schedule = Schedule(
        ops={"a": ScheduledOp(0, 0, 0), "b": ScheduledOp(2, 1, 0)},
        configuration=Configuration.of([1, 2]),
        deadline=10,
    )
    return dfg, table, assignment, schedule


class TestRender:
    def test_rows_per_instance(self, instance):
        dfg, table, assignment, schedule = instance
        out = render_gantt(schedule, table, assignment)
        lines = out.splitlines()
        # header + rule + 3 instances (1 of F1, 2 of F2)
        assert len(lines) == 5
        assert any(l.startswith("F1#0") for l in lines)
        assert any(l.startswith("F2#1") for l in lines)

    def test_occupancy_marked(self, instance):
        dfg, table, assignment, schedule = instance
        out = render_gantt(schedule, table, assignment)
        f1_row = next(l for l in out.splitlines() if l.startswith("F1#0"))
        assert f1_row.count("a") == 2  # two steps of node a
        f2_row = next(l for l in out.splitlines() if l.startswith("F2#0"))
        assert f2_row.count("b") == 3

    def test_idle_instance_all_dots(self, instance):
        dfg, table, assignment, schedule = instance
        out = render_gantt(schedule, table, assignment)
        idle = next(l for l in out.splitlines() if l.startswith("F2#1"))
        assert "b" not in idle and "·" in idle

    def test_long_names_truncated(self):
        dfg = DFG()
        dfg.add_node("very_long_node_name")
        table = TimeCostTable.from_rows({"very_long_node_name": ([2], [1.0])})
        assignment = Assignment.of({"very_long_node_name": 0})
        schedule = Schedule(
            ops={"very_long_node_name": ScheduledOp(0, 0, 0)},
            configuration=Configuration.of([1]),
            deadline=5,
        )
        out = render_gantt(schedule, table, assignment, cell_width=4)
        assert "…" in out

    def test_custom_names(self, instance):
        dfg, table, assignment, schedule = instance
        out = render_gantt(schedule, table, assignment, names=["ALU", "MUL"])
        assert "ALU#0" in out and "MUL#0" in out

    def test_bad_names_length(self, instance):
        dfg, table, assignment, schedule = instance
        with pytest.raises(ScheduleError):
            render_gantt(schedule, table, assignment, names=["only_one"])

    def test_bad_cell_width(self, instance):
        dfg, table, assignment, schedule = instance
        with pytest.raises(ScheduleError):
            render_gantt(schedule, table, assignment, cell_width=1)

    def test_real_synthesis_renders(self):
        from repro import min_completion_time, synthesize
        from repro.fu.random_tables import random_table
        from repro.suite.registry import get_benchmark

        dag = get_benchmark("lattice4").dag()
        t = random_table(dag, seed=24)
        result = synthesize(dag, t, min_completion_time(dag, t) + 3)
        out = render_gantt(result.schedule, t, result.assignment)
        # every node appears somewhere in the chart
        for node in dag.nodes():
            assert str(node)[:3] in out
