"""Unit tests for the experiment harness (Tables 1–2 machinery)."""

import pytest

from repro.report.experiments import (
    ExperimentRow,
    average_reduction,
    deadline_sweep,
    render_rows,
    run_benchmark_rows,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def diffeq_rows():
    return run_benchmark_rows("diffeq", seed=24, count=3)


class TestDeadlineSweep:
    def test_starts_at_floor(self):
        from repro.assign.assignment import min_completion_time
        from repro.fu.random_tables import random_table
        from repro.suite.registry import get_benchmark

        dfg = get_benchmark("diffeq").dag()
        table = random_table(dfg, seed=24)
        sweep = deadline_sweep(dfg, table, count=4)
        assert sweep[0] == min_completion_time(dfg, table)
        assert len(sweep) == 4
        assert sweep == sorted(sweep)
        assert len(set(sweep)) == 4  # strictly increasing


class TestRows:
    def test_row_count(self, diffeq_rows):
        assert len(diffeq_rows) == 3

    def test_costs_ordered(self, diffeq_rows):
        for r in diffeq_rows:
            assert r.once_cost <= r.greedy_cost + 1e-9
            assert r.repeat_cost <= r.once_cost + 1e-9

    def test_reductions_consistent(self, diffeq_rows):
        for r in diffeq_rows:
            assert r.once_reduction == pytest.approx(
                (r.greedy_cost - r.once_cost) / r.greedy_cost
            )
            assert 0.0 <= r.repeat_reduction < 1.0

    def test_tree_column_present_for_forest_benchmark(self, diffeq_rows):
        # diffeq is an in-forest, so the optimal tree cost is reported
        assert all(r.tree_cost is not None for r in diffeq_rows)

    def test_tree_column_absent_for_true_dag(self):
        rows = run_benchmark_rows("elliptic", seed=24, count=2)
        assert all(r.tree_cost is None for r in rows)

    def test_configuration_labelled(self, diffeq_rows):
        assert all("F" in r.configuration for r in diffeq_rows)

    def test_with_exact_column(self):
        rows = run_benchmark_rows("diffeq", seed=24, count=2, with_exact=True)
        for r in rows:
            assert r.exact_cost is not None
            assert r.exact_cost <= r.repeat_cost + 1e-9


class TestAggregation:
    def test_average_reduction(self, diffeq_rows):
        avg = average_reduction(diffeq_rows, "once")
        assert avg == pytest.approx(
            sum(r.once_reduction for r in diffeq_rows) / len(diffeq_rows)
        )

    def test_average_reduction_bad_args(self, diffeq_rows):
        with pytest.raises(ReproError):
            average_reduction(diffeq_rows, "nope")
        with pytest.raises(ReproError):
            average_reduction([], "once")

    def test_render(self, diffeq_rows):
        out = render_rows(diffeq_rows, title="t")
        assert "diffeq" in out
        assert "avg reduction" in out
        assert "%" in out
