"""Unit tests for the artifact regeneration orchestrator."""

import pytest

from repro.report.make_all import ARTIFACTS, make_all


class TestMakeAll:
    def test_artifact_registry_names(self):
        assert {"table1", "table2", "headline", "robustness"} <= set(ARTIFACTS)

    def test_subset_written_to_disk(self, tmp_path, capsys):
        written = make_all(str(tmp_path), only=["headline", "benchmark_profiles"])
        assert set(written) == {"headline", "benchmark_profiles"}
        for path in written.values():
            text = open(path).read()
            assert text.strip()
        out = capsys.readouterr().out
        assert "headline.txt" in out

    def test_headline_artifact_content(self, tmp_path):
        written = make_all(str(tmp_path), only=["headline"])
        text = open(written["headline"]).read()
        assert "DFG_Assign_Once" in text and "%" in text

    def test_unknown_artifact(self, tmp_path):
        from repro.errors import ReportError

        with pytest.raises(ReportError):
            make_all(str(tmp_path), only=["nope"])

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        make_all(str(target), only=["benchmark_profiles"])
        assert (target / "benchmark_profiles.txt").exists()
