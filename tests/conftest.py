"""Shared fixtures and helpers for the repro test suite.

The suite runs with the v1 API freeze engaged: ``STRICT_API`` is forced
on below (mirroring ``REPRO_STRICT_API=1`` in CI), so any legacy
positional call that survives in library or test code fails loudly as a
TypeError instead of a DeprecationWarning.  Tests that exercise the
migration shims themselves opt back out with
``monkeypatch.setattr(repro.apiutil, "STRICT_API", False)``.
"""

from __future__ import annotations

import os

import pytest

import repro.apiutil
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG

os.environ.setdefault("REPRO_STRICT_API", "1")
repro.apiutil.STRICT_API = True


@pytest.fixture
def diamond() -> DFG:
    """The 4-node diamond: a → b, a → c, b → d, c → d."""
    return DFG.from_edges(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], name="diamond"
    )


@pytest.fixture
def chain3() -> DFG:
    """A 3-node simple path a → b → c."""
    return DFG.from_edges([("a", "b"), ("b", "c")], name="chain3")


@pytest.fixture
def chain3_table() -> TimeCostTable:
    """Monotone 3-type table for the chain fixture."""
    return TimeCostTable.from_rows(
        {
            "a": ([1, 3, 5], [10.0, 6.0, 2.0]),
            "b": ([2, 4, 6], [12.0, 7.0, 3.0]),
            "c": ([1, 2, 4], [9.0, 5.0, 1.0]),
        }
    )


@pytest.fixture
def small_tree() -> DFG:
    """Out-tree: r → x, r → y, y → z."""
    return DFG.from_edges([("r", "x"), ("r", "y"), ("y", "z")], name="small_tree")


@pytest.fixture
def wide_dag() -> DFG:
    """A DAG with common nodes in both directions (not a forest)."""
    return DFG.from_edges(
        [("A", "C"), ("B", "C"), ("C", "E"), ("C", "F"), ("D", "F")],
        name="wide_dag",
    )


def make_table(dfg: DFG, seed: int = 0, num_types: int = 3) -> TimeCostTable:
    """Seeded monotone table for arbitrary test graphs."""
    from repro.fu.random_tables import random_table

    return random_table(dfg, num_types=num_types, seed=seed)
