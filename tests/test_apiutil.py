"""`deprecated_positionals`: mapping, errors, and warning attribution.

The stacklevel regression matters most: the DeprecationWarning must
point at the *caller's* line (stacklevel=2 from inside the wrapper),
not at apiutil itself — otherwise every legacy call site in user code
shows up as a warning in our library, which filters like
``-W error::DeprecationWarning:repro`` would then misclassify.
"""

from __future__ import annotations

import warnings

import pytest

from repro.apiutil import deprecated_positionals


@deprecated_positionals("gamma", "delta")
def _sample(alpha, beta, *, gamma=0, delta=1):
    return alpha, beta, gamma, delta


def test_keyword_call_warns_nothing():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _sample(1, 2, gamma=3, delta=4) == (1, 2, 3, 4)


def test_legacy_positionals_mapped_with_warning():
    with pytest.warns(DeprecationWarning, match="'gamma', 'delta'"):
        assert _sample(1, 2, 3, 4) == (1, 2, 3, 4)


def test_partial_legacy_positional():
    with pytest.warns(DeprecationWarning, match="'gamma'"):
        assert _sample(1, 2, 3, delta=9) == (1, 2, 3, 9)


def test_too_many_positionals_is_typeerror():
    with pytest.raises(TypeError, match="takes 2 positional"):
        _sample(1, 2, 3, 4, 5)


def test_duplicate_keyword_is_typeerror():
    with pytest.raises(TypeError, match="multiple values for argument 'gamma'"):
        _sample(1, 2, 3, gamma=7)


def test_warning_points_at_caller():
    """Regression: stacklevel must attribute the warning to this file.

    If the decorator ever drops back to the default stacklevel=1, the
    recorded filename becomes apiutil.py and this test fails.
    """
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _sample(1, 2, 3)
    (record,) = [w for w in caught if w.category is DeprecationWarning]
    assert record.filename == __file__
