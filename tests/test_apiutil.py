"""`deprecated_positionals`: mapping, errors, warning attribution, freeze.

The stacklevel regression matters most: the DeprecationWarning must
point at the *caller's* line (stacklevel=2 from inside the wrapper),
not at apiutil itself — otherwise every legacy call site in user code
shows up as a warning in our library, which filters like
``-W error::DeprecationWarning:repro`` would then misclassify.

The suite runs with ``STRICT_API`` on (see ``tests/conftest.py``), so
the legacy-mapping tests here opt out explicitly — they are tests *of*
the migration shim, not users of it.
"""

from __future__ import annotations

import warnings

import pytest

import repro.apiutil as apiutil
from repro.apiutil import deprecated_positionals


@deprecated_positionals("gamma", "delta")
def _sample(alpha, beta, *, gamma=0, delta=1):
    return alpha, beta, gamma, delta


@pytest.fixture
def legacy_mode(monkeypatch):
    """Disable the v1 freeze so the mapping path is reachable."""
    monkeypatch.setattr(apiutil, "STRICT_API", False)


def test_keyword_call_warns_nothing():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _sample(1, 2, gamma=3, delta=4) == (1, 2, 3, 4)


def test_legacy_positionals_mapped_with_warning(legacy_mode):
    with pytest.warns(DeprecationWarning, match="'gamma', 'delta'"):
        assert _sample(1, 2, 3, 4) == (1, 2, 3, 4)


def test_partial_legacy_positional(legacy_mode):
    with pytest.warns(DeprecationWarning, match="'gamma'"):
        assert _sample(1, 2, 3, delta=9) == (1, 2, 3, 9)


def test_too_many_positionals_is_typeerror(legacy_mode):
    with pytest.raises(TypeError, match="takes 2 positional"):
        _sample(1, 2, 3, 4, 5)


def test_duplicate_keyword_is_typeerror(legacy_mode):
    with pytest.raises(TypeError, match="multiple values for argument 'gamma'"):
        _sample(1, 2, 3, gamma=7)


def test_warning_points_at_caller(legacy_mode):
    """Regression: stacklevel must attribute the warning to this file.

    If the decorator ever drops back to the default stacklevel=1, the
    recorded filename becomes apiutil.py and this test fails.
    """
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _sample(1, 2, 3)
    (record,) = [w for w in caught if w.category is DeprecationWarning]
    assert record.filename == __file__


class TestStrictMode:
    """The v1 freeze: legacy positionals become TypeErrors."""

    def test_suite_runs_with_strict_api_on(self):
        assert apiutil.STRICT_API is True

    def test_legacy_positional_rejected(self):
        with pytest.raises(TypeError, match="STRICT_API"):
            _sample(1, 2, 3)

    def test_error_names_the_callable_and_arity(self):
        with pytest.raises(TypeError, match=r"_sample\(\) takes 2 positional"):
            _sample(1, 2, 3, 4)

    def test_keyword_calls_unaffected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _sample(5, 6, gamma=7) == (5, 6, 7, 1)

    def test_flag_read_at_call_time(self, monkeypatch):
        """Flipping the module flag flips behaviour without re-decorating."""
        monkeypatch.setattr(apiutil, "STRICT_API", False)
        with pytest.warns(DeprecationWarning):
            _sample(1, 2, 3)
        monkeypatch.setattr(apiutil, "STRICT_API", True)
        with pytest.raises(TypeError, match="STRICT_API"):
            _sample(1, 2, 3)
