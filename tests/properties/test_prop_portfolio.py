"""Property-based tests for the metaheuristic portfolio.

The load-bearing guarantees of PR 6:

* **never worse than the paper**: on every registered benchmark the
  portfolio winner costs at most `DFG_Assign_Repeat` (its population
  seed), so racing metaheuristics can only improve on the paper's
  heuristic;
* **anytime**: interrupting the race at any budget — including a single
  evaluation — still yields a deadline-feasible, verified assignment;
* **deterministic**: identical seeds give identical
  :class:`~repro.assign.portfolio.PortfolioResult` objects at any
  worker count, and on arbitrary hypothesis-generated instances.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.assignment import min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.assign.portfolio import portfolio_assign
from repro.fu.random_tables import random_table
from repro.suite import benchmark_names, get_benchmark

from .strategies import dag_with_table

ATOL = 1e-9
SETTINGS = dict(max_examples=25, deadline=None)


def _benchmark_case(name, slack=4):
    dag = get_benchmark(name).dag()
    table = random_table(dag, num_types=3, seed=2004)
    return dag, table, min_completion_time(dag, table) + slack


@pytest.mark.parametrize("name", benchmark_names())
def test_portfolio_never_worse_than_repeat_on_benchmarks(name):
    dag, table, deadline = _benchmark_case(name)
    repeat = dfg_assign_repeat(dag, table, deadline)
    result = portfolio_assign(
        dag, table, deadline, evaluations=300, seed=2004
    )
    result.best.verify(dag, table)
    assert result.best.cost <= repeat.cost + ATOL
    assert result.gap >= 0.0


@pytest.mark.parametrize("budget", [1, 2, 5, 17])
@pytest.mark.parametrize("name", ["diffeq", "elliptic", "fft4"])
def test_budget_interruption_stays_feasible(name, budget):
    dag, table, deadline = _benchmark_case(name)
    result = portfolio_assign(
        dag, table, deadline, evaluations=budget, seed=2004
    )
    result.best.verify(dag, table)
    assert result.best.cost <= result.seed_cost + ATOL


@given(dag_with_table(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(**SETTINGS)
def test_same_seed_same_result_across_worker_counts(data, seed):
    dfg, table = data
    deadline = min_completion_time(dfg, table) + 3
    serial = portfolio_assign(
        dfg, table, deadline, evaluations=60, seed=seed, workers=0
    )
    again = portfolio_assign(
        dfg, table, deadline, evaluations=60, seed=seed, workers=0
    )
    assert serial == again
    serial.best.verify(dfg, table)


@pytest.mark.parametrize("name", ["diffeq", "lattice4"])
def test_workers_two_matches_serial_on_benchmarks(name):
    dag, table, deadline = _benchmark_case(name)
    serial = portfolio_assign(
        dag, table, deadline, evaluations=120, seed=7, workers=0
    )
    fanned = portfolio_assign(
        dag, table, deadline, evaluations=120, seed=7, workers=2
    )
    assert serial == fanned
