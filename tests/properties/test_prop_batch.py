"""Batched-path bit-identity over the full suite + random instances.

The batched engine is an execution-layer optimization, so its contract
is total: for *every* registered benchmark and for arbitrary random
instances, the batched entry points must reproduce the scalar packed
path — which in turn equals the python reference — bit for bit:
assignments, costs, frontier knees, ``DPStats`` work counters, and the
exact error strings of infeasible lanes.  Shared-memory arenas and
process pools must be invisible at this level too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.assign import (
    BatchJob,
    dfg_assign_repeat,
    dfg_assign_repeat_batch,
    dfg_frontier,
    min_completion_time,
    tree_frontier_batch,
)
from repro.assign.frontier import tree_frontier
from repro.engine import DPStats
from repro.errors import ReproError
from repro.fu.random_tables import random_table
from repro.graph.classify import is_in_forest, is_out_forest
from repro.suite.registry import benchmark_names, get_benchmark

from .strategies import dags, tables_for, trees

SEED = 2004
SLACK = 6


def _instance(name):
    dag = get_benchmark(name).dag()
    table = random_table(dag, num_types=3, seed=SEED)
    return dag, table, min_completion_time(dag, table)


def _counters(stats: DPStats) -> dict:
    counters = {
        k: v
        for k, v in stats.as_dict().items()
        if not k.startswith("seconds")
    }
    assert counters  # guard against the filter going vacuous
    return counters


def _assert_outcome_matches_scalar(outcome, dfg, table, deadline):
    scalar_stats = DPStats()
    try:
        scalar = dfg_assign_repeat(dfg, table, deadline, stats=scalar_stats)
    except ReproError as exc:
        assert outcome.result is None
        assert type(outcome.error) is type(exc)
        assert str(outcome.error) == str(exc)
        return
    assert outcome.error is None, outcome.error
    assert dict(outcome.result.assignment.items()) == dict(
        scalar.assignment.items()
    )
    assert outcome.result.cost == scalar.cost
    assert outcome.result.completion_time == scalar.completion_time
    assert _counters(outcome.stats) == _counters(scalar_stats)


@pytest.mark.parametrize("name", benchmark_names())
def test_batched_frontier_matches_packed_and_python(name):
    dag, table, floor = _instance(name)
    horizon = floor + SLACK
    batched = dfg_frontier(dag, table, max_deadline=horizon, batch=True)
    packed = dfg_frontier(dag, table, max_deadline=horizon, kernel="packed")
    python = dfg_frontier(dag, table, max_deadline=horizon, kernel="python")
    assert [tuple(p) for p in batched] == [tuple(p) for p in packed]
    assert [tuple(p) for p in batched] == [tuple(p) for p in python]


@pytest.mark.parametrize("name", benchmark_names())
def test_batched_repeat_matches_scalar_per_benchmark(name):
    dag, table, floor = _instance(name)
    deadlines = [floor - 1, floor, floor + 3]
    outcomes = dfg_assign_repeat_batch(
        [BatchJob(dag, table, d) for d in deadlines]
    )
    for deadline, outcome in zip(deadlines, outcomes):
        _assert_outcome_matches_scalar(outcome, dag, table, deadline)


@pytest.mark.parametrize("name", benchmark_names())
def test_tree_frontier_batch_matches_scalar_per_benchmark(name):
    dag, table, floor = _instance(name)
    if not (is_out_forest(dag) or is_in_forest(dag)):
        pytest.skip(f"{name} is not tree-shaped")
    horizon = floor + SLACK
    (batched,) = tree_frontier_batch([(dag, table, horizon)])
    assert batched == tree_frontier(dag, table, max_deadline=horizon)


@settings(max_examples=25, deadline=None)
@given(data=dags(max_nodes=7).flatmap(
    lambda d: tables_for(d).map(lambda t: (d, t))
))
def test_batched_repeat_matches_scalar_on_random_dags(data):
    dfg, table = data
    floor = min_completion_time(dfg, table)
    deadlines = [floor - 1, floor, floor + 2]
    outcomes = dfg_assign_repeat_batch(
        [BatchJob(dfg, table, d) for d in deadlines]
    )
    for deadline, outcome in zip(deadlines, outcomes):
        _assert_outcome_matches_scalar(outcome, dfg, table, deadline)


@settings(max_examples=25, deadline=None)
@given(data=trees(max_nodes=7).flatmap(
    lambda d: tables_for(d).map(lambda t: (d, t))
))
def test_batched_tree_frontier_matches_scalar_on_random_trees(data):
    tree, table = data
    horizon = min_completion_time(tree, table) + 4
    (batched,) = tree_frontier_batch([(tree, table, horizon)])
    assert batched == tree_frontier(tree, table, max_deadline=horizon)


@pytest.mark.parametrize("arena", [False, True])
def test_workers_and_arena_are_invisible(arena):
    # One pool spin-up keeps the property affordable; per-knob coverage
    # of workers x arena lives in tests/assign/test_batch.py.
    jobs, baseline = [], []
    for name in ("diffeq", "elliptic"):
        dag, table, floor = _instance(name)
        for d in (floor - 1, floor + 2):
            jobs.append(BatchJob(dag, table, d))
    baseline = dfg_assign_repeat_batch(jobs)
    parallel = dfg_assign_repeat_batch(jobs, workers=2, arena=arena)
    for got, want in zip(parallel, baseline):
        if want.error is not None:
            assert type(got.error) is type(want.error)
            assert str(got.error) == str(want.error)
        else:
            assert got.error is None
            assert dict(got.result.assignment.items()) == dict(
                want.result.assignment.items()
            )
            assert got.result.cost == want.result.cost
        assert _counters(got.stats) == _counters(want.stats)
