"""Property-based tests for the extension modules.

Covers the exchange format (round-trip), the downgrade baseline
(feasibility + bounded by optimum), force-directed scheduling
(validity), frontiers (monotone, match the DP), and the ILP model
(objective equivalence)."""

import pytest
from hypothesis import given, settings

from repro.assign.assignment import min_completion_time
from repro.assign.downgrade import downgrade_assign
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.assign.exact import brute_force_assign
from repro.assign.frontier import tree_frontier
from repro.assign.ilp_model import build_ilp, check_solution
from repro.assign.tree_assign import tree_assign
from repro.sched.force_directed import force_directed_schedule
from repro.suite.io_formats import dumps, loads

from .strategies import dag_with_table, dags, sp_with_table, tree_with_table

SETTINGS = dict(max_examples=50, deadline=None)


@given(dags())
@settings(**SETTINGS)
def test_exchange_format_roundtrip(dfg):
    back, _ = loads(dumps(dfg))
    assert back == dfg


@given(dag_with_table())
@settings(**SETTINGS)
def test_exchange_format_roundtrip_with_table(data):
    dfg, table = data
    back, back_table = loads(dumps(dfg, table))
    assert back == dfg
    for n in dfg.nodes():
        assert list(back_table.times(n)) == list(table.times(n))
        assert list(back_table.costs(n)) == list(table.costs(n))


@given(dag_with_table())
@settings(**SETTINGS)
def test_downgrade_feasible_and_bounded(data):
    dfg, table = data
    deadline = min_completion_time(dfg, table) + 2
    result = downgrade_assign(dfg, table, deadline)
    result.verify(dfg, table)
    opt = brute_force_assign(dfg, table, deadline)
    assert result.cost >= opt.cost - 1e-9


@given(dag_with_table())
@settings(**SETTINGS)
def test_force_directed_always_valid(data):
    dfg, table = data
    deadline = min_completion_time(dfg, table) + 2
    assignment = dfg_assign_repeat(dfg, table, deadline).assignment
    sched = force_directed_schedule(dfg, table, assignment, deadline)
    sched.validate(dfg, table, assignment)
    assert sched.makespan(table) <= deadline


@given(tree_with_table())
@settings(**SETTINGS)
def test_tree_frontier_matches_dp_everywhere(data):
    tree, table = data
    floor = min_completion_time(tree, table)
    horizon = floor + 4
    frontier = tree_frontier(tree, table, max_deadline=horizon)
    assert frontier[0].deadline == floor
    costs = [c for _, c in frontier]
    assert all(a > b for a, b in zip(costs, costs[1:]))
    for deadline, cost in frontier:
        assert tree_assign(tree, table, deadline).cost == pytest.approx(cost)


@given(dag_with_table())
@settings(**SETTINGS)
def test_schedule_replay_matches_reference_simulation(data):
    """Any synthesized schedule computes the reference values exactly —
    the semantic counterpart of the structural schedule validator."""
    from repro.sched.min_resource import min_resource_schedule
    from repro.sim.functional import simulate, simulate_schedule

    dfg, table = data
    deadline = min_completion_time(dfg, table) + 2
    assignment = dfg_assign_repeat(dfg, table, deadline).assignment
    schedule = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
    inputs = {n: [3.0, -1.0] for n in dfg.roots()}
    assert simulate_schedule(
        dfg, table, assignment, schedule, 2, inputs=inputs
    ) == simulate(dfg, 2, inputs=inputs)


@given(dag_with_table())
@settings(max_examples=30, deadline=None)
def test_modulo_schedule_valid_on_acyclic(data):
    """Modulo scheduling of an acyclic body: a valid pipeline whose II
    is at least the resource floor."""
    from repro.retiming.modulo import modulo_schedule, res_mii
    from repro.sched.schedule import Configuration

    dfg, table = data
    assignment = dfg_assign_repeat(
        dfg, table, min_completion_time(dfg, table) + 2
    ).assignment
    counts = [0] * table.num_types
    for n in dfg.nodes():
        counts[assignment[n]] = max(counts[assignment[n]], 1)
    counts = [c + 1 if c else 0 for c in counts]
    cfg = Configuration.of(counts)
    ms = modulo_schedule(dfg, table, assignment, cfg)
    ms.validate(dfg, table, assignment)
    assert ms.ii >= res_mii(dfg, table, assignment, cfg)


@given(sp_with_table())
@settings(max_examples=40, deadline=None)
def test_sp_assign_is_optimal(data):
    """The series-parallel DP equals brute force on every random SP
    instance small enough for the oracle."""
    from repro.assign.series_parallel import sp_assign

    dfg, table = data
    if len(dfg) > 10:
        return  # oracle too slow; recognition still exercised below
    deadline = min_completion_time(dfg, table) + 2
    got = sp_assign(dfg, table, deadline)
    got.verify(dfg, table)
    want = brute_force_assign(dfg, table, deadline)
    assert got.cost == pytest.approx(want.cost)


@given(sp_with_table())
@settings(max_examples=40, deadline=None)
def test_sp_builder_graphs_are_recognized(data):
    from repro.assign.series_parallel import sp_assign

    dfg, table = data
    deadline = min_completion_time(dfg, table) + 2
    # must never raise NotSeriesParallelError on built-SP graphs
    result = sp_assign(dfg, table, deadline)
    result.verify(dfg, table)


@given(dag_with_table())
@settings(**SETTINGS)
def test_ilp_objective_equals_system_cost(data):
    dfg, table = data
    deadline = min_completion_time(dfg, table) + 2
    model = build_ilp(dfg, table, deadline)
    result = dfg_assign_repeat(dfg, table, deadline)
    assert check_solution(
        model, dfg, table, result.assignment
    ) == pytest.approx(result.cost)
