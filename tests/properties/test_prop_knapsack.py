"""Property-based tests for the knapsack reduction (NP-completeness §4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.knapsack import KnapsackInstance, solve_knapsack_via_hap


def knapsack_dp(values, weights, capacity):
    best = [0.0] * (capacity + 1)
    for v, w in zip(values, weights):
        for c in range(capacity, w - 1, -1):
            best[c] = max(best[c], best[c - w] + v)
    return best[capacity]


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    values = tuple(
        float(v)
        for v in draw(
            st.lists(
                st.integers(min_value=0, max_value=40), min_size=n, max_size=n
            )
        )
    )
    weights = tuple(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=12), min_size=n, max_size=n
            )
        )
    )
    capacity = draw(st.integers(min_value=0, max_value=30))
    return KnapsackInstance(values=values, weights=weights, capacity=capacity)


@given(instances())
@settings(max_examples=120, deadline=None)
def test_reduction_matches_classical_dp(inst):
    got, _ = solve_knapsack_via_hap(inst)
    assert got == pytest.approx(
        knapsack_dp(inst.values, inst.weights, inst.capacity)
    )


@given(instances())
@settings(max_examples=120, deadline=None)
def test_returned_packing_is_legal_and_achieves_value(inst):
    value, taken = solve_knapsack_via_hap(inst)
    assert sum(inst.weights[i] for i in taken) <= inst.capacity
    assert sum(inst.values[i] for i in taken) == pytest.approx(value)
    assert taken == sorted(set(taken))
