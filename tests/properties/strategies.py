"""Hypothesis strategies for DFGs and time/cost tables."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG


@st.composite
def dags(draw, max_nodes: int = 8, max_parents: int = 3):
    """Random small DAGs (possibly disconnected, possibly edgeless)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    dfg = DFG(name="hyp_dag")
    ops = ["mul", "add", "sub"]
    for i in range(n):
        dfg.add_node(f"v{i}", op=draw(st.sampled_from(ops)))
    for j in range(1, n):
        k = draw(st.integers(min_value=0, max_value=min(j, max_parents)))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        for p in parents:
            dfg.add_edge(f"v{p}", f"v{j}", 0)
    return dfg


@st.composite
def trees(draw, max_nodes: int = 8, out_tree: bool = True):
    """Random out-trees (in-degree <= 1) or in-trees."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    dfg = DFG(name="hyp_tree")
    dfg.add_node("v0", op="add")
    for i in range(1, n):
        anchor = draw(st.integers(min_value=0, max_value=i - 1))
        dfg.add_node(f"v{i}", op="add")
        if out_tree:
            dfg.add_edge(f"v{anchor}", f"v{i}", 0)
        else:
            dfg.add_edge(f"v{i}", f"v{anchor}", 0)
    return dfg


@st.composite
def chains(draw, max_nodes: int = 8):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    dfg = DFG(name="hyp_chain")
    for i in range(n):
        dfg.add_node(f"v{i}", op="add")
        if i:
            dfg.add_edge(f"v{i - 1}", f"v{i}", 0)
    return dfg


@st.composite
def tables_for(draw, dfg: DFG, max_types: int = 3, max_time: int = 6):
    """Arbitrary (not necessarily monotone) tables covering ``dfg``.

    Times are positive; costs are small non-negative integers as
    floats, so exact cost comparisons in properties are safe.
    """
    m = draw(st.integers(min_value=1, max_value=max_types))
    table = TimeCostTable(m)
    for node in dfg.nodes():
        times = draw(
            st.lists(
                st.integers(min_value=1, max_value=max_time),
                min_size=m,
                max_size=m,
            )
        )
        costs = draw(
            st.lists(
                st.integers(min_value=0, max_value=20),
                min_size=m,
                max_size=m,
            )
        )
        table.set_row(node, times, [float(c) for c in costs])
    return table


@st.composite
def sp_dags(draw, max_depth: int = 3):
    """Random two-terminal series-parallel DAGs via recursive builder."""
    dfg = DFG(name="hyp_sp")
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"n{counter[0]}"

    def build(src, dst, depth):
        kind = draw(st.sampled_from(["leaf", "series", "parallel"])) if depth else "leaf"
        if kind == "leaf":
            mid = fresh()
            dfg.add_node(mid, op="add")
            dfg.add_edge(src, mid, 0)
            dfg.add_edge(mid, dst, 0)
        elif kind == "series":
            mid = fresh()
            dfg.add_node(mid, op="add")
            build(src, mid, depth - 1)
            build(mid, dst, depth - 1)
        else:
            branches = draw(st.integers(min_value=2, max_value=3))
            for _ in range(branches):
                build(src, dst, depth - 1)

    dfg.add_node("S", op="add")
    dfg.add_node("T", op="add")
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    build("S", "T", depth)
    return dfg


@st.composite
def sp_with_table(draw, max_depth: int = 2):
    dfg = draw(sp_dags(max_depth=max_depth))
    table = draw(tables_for(dfg, max_types=2))
    return dfg, table


@st.composite
def dag_with_table(draw, max_nodes: int = 7):
    dfg = draw(dags(max_nodes=max_nodes))
    table = draw(tables_for(dfg))
    return dfg, table


@st.composite
def tree_with_table(draw, max_nodes: int = 8, out_tree: bool = True):
    dfg = draw(trees(max_nodes=max_nodes, out_tree=out_tree))
    table = draw(tables_for(dfg))
    return dfg, table


@st.composite
def chain_with_table(draw, max_nodes: int = 8):
    dfg = draw(chains(max_nodes=max_nodes))
    table = draw(tables_for(dfg))
    return dfg, table
