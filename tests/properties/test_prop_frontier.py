"""Frontier properties over the full suite registry.

Two invariants the fuzzing harness also checks on random instances,
pinned here on every *registered* benchmark with the seed of record:

* frontiers are non-increasing in cost and strictly increasing in
  deadline (relaxing the constraint can only help);
* the packed DP kernel and the python reference produce *identical*
  knees — same deadlines, same costs — on every benchmark shape.
"""

import pytest

from repro.assign.assignment import min_completion_time
from repro.assign.frontier import dfg_frontier, tree_frontier
from repro.fu.random_tables import random_table
from repro.graph.classify import is_in_forest, is_out_forest
from repro.suite.registry import benchmark_names, get_benchmark

SEED = 2004
SLACK = 6


def _instance(name):
    dag = get_benchmark(name).dag()
    table = random_table(dag, num_types=3, seed=SEED)
    horizon = min_completion_time(dag, table) + SLACK
    return dag, table, horizon


def _assert_monotone(points):
    costs = [p.cost for p in points]
    deadlines = [p.deadline for p in points]
    assert all(a >= b for a, b in zip(costs, costs[1:])), costs
    assert all(a < b for a, b in zip(deadlines, deadlines[1:])), deadlines


@pytest.mark.parametrize("name", benchmark_names())
def test_dfg_frontier_kernels_identical_and_monotone(name):
    dag, table, horizon = _instance(name)
    packed = dfg_frontier(dag, table, max_deadline=horizon, kernel="packed")
    python = dfg_frontier(dag, table, max_deadline=horizon, kernel="python")
    assert [tuple(p) for p in packed] == [tuple(p) for p in python]
    _assert_monotone(packed)


@pytest.mark.parametrize("name", benchmark_names())
def test_tree_frontier_kernels_identical_and_monotone(name):
    dag, table, horizon = _instance(name)
    if not (is_out_forest(dag) or is_in_forest(dag)):
        pytest.skip(f"{name} is not a forest")
    packed = tree_frontier(dag, table, max_deadline=horizon, kernel="packed")
    python = tree_frontier(dag, table, max_deadline=horizon, kernel="python")
    assert [tuple(p) for p in packed] == [tuple(p) for p in python]
    _assert_monotone(packed)
