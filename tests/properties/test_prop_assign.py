"""Property-based tests: assignment algorithms vs the brute-force oracle.

These are the strongest correctness guarantees in the suite — for
arbitrary small instances (arbitrary non-monotone tables included):

* `Path_Assign` and `Tree_Assign` are *exactly optimal*;
* the heuristics and greedy are always feasible and never beat the
  optimum; `DFG_Assign_Repeat` never loses to `DFG_Assign_Once`'s
  pinned resolution on the same expansion;
* exact branch-and-bound equals brute force.
"""

import pytest
from hypothesis import given, settings

from repro.assign.assignment import min_completion_time
from repro.assign.dfg_assign import dfg_assign_once, dfg_assign_repeat
from repro.assign.exact import brute_force_assign, exact_assign
from repro.assign.greedy import greedy_assign
from repro.assign.path_assign import path_assign
from repro.assign.tree_assign import tree_assign

from .strategies import chain_with_table, dag_with_table, tree_with_table

SETTINGS = dict(max_examples=60, deadline=None)


def slackful_deadline(dfg, table, extra=3):
    return min_completion_time(dfg, table) + extra


@given(chain_with_table())
@settings(**SETTINGS)
def test_path_assign_is_optimal(data):
    dfg, table = data
    deadline = slackful_deadline(dfg, table)
    got = path_assign(dfg, table, deadline)
    got.verify(dfg, table)
    want = brute_force_assign(dfg, table, deadline)
    assert got.cost == pytest.approx(want.cost)


@given(tree_with_table(out_tree=True))
@settings(**SETTINGS)
def test_tree_assign_optimal_out_trees(data):
    dfg, table = data
    deadline = slackful_deadline(dfg, table)
    got = tree_assign(dfg, table, deadline)
    got.verify(dfg, table)
    want = brute_force_assign(dfg, table, deadline)
    assert got.cost == pytest.approx(want.cost)


@given(tree_with_table(out_tree=False))
@settings(**SETTINGS)
def test_tree_assign_optimal_in_trees(data):
    dfg, table = data
    deadline = slackful_deadline(dfg, table)
    got = tree_assign(dfg, table, deadline)
    got.verify(dfg, table)
    want = brute_force_assign(dfg, table, deadline)
    assert got.cost == pytest.approx(want.cost)


@given(tree_with_table(out_tree=True))
@settings(**SETTINGS)
def test_tree_assign_optimal_at_floor(data):
    """The tightest feasible deadline is the adversarial spot."""
    dfg, table = data
    deadline = min_completion_time(dfg, table)
    got = tree_assign(dfg, table, deadline)
    want = brute_force_assign(dfg, table, deadline)
    assert got.cost == pytest.approx(want.cost)


@given(dag_with_table())
@settings(**SETTINGS)
def test_exact_bb_matches_brute_force(data):
    dfg, table = data
    deadline = slackful_deadline(dfg, table, extra=2)
    bb = exact_assign(dfg, table, deadline)
    bb.verify(dfg, table)
    bf = brute_force_assign(dfg, table, deadline)
    assert bb.cost == pytest.approx(bf.cost)


@given(dag_with_table())
@settings(**SETTINGS)
def test_heuristics_feasible_and_bounded(data):
    dfg, table = data
    deadline = slackful_deadline(dfg, table, extra=2)
    opt = brute_force_assign(dfg, table, deadline)
    for algo in (greedy_assign, dfg_assign_once, dfg_assign_repeat):
        result = algo(dfg, table, deadline)
        result.verify(dfg, table)
        assert result.completion_time <= deadline
        assert result.cost >= opt.cost - 1e-9


@given(dag_with_table())
@settings(**SETTINGS)
def test_repeat_never_worse_than_once(data):
    """On a shared expansion, pinning + re-optimizing cannot lose."""
    from repro.assign.dfg_assign import choose_expansion

    dfg, table = data
    deadline = slackful_deadline(dfg, table, extra=2)
    expansion = choose_expansion(dfg)
    once = dfg_assign_once(dfg, table, deadline, expansion=expansion)
    repeat = dfg_assign_repeat(dfg, table, deadline, expansion=expansion)
    assert repeat.cost <= once.cost + 1e-9


@given(chain_with_table())
@settings(**SETTINGS)
def test_cost_monotone_in_deadline(data):
    """Relaxing the constraint can never increase the optimum."""
    dfg, table = data
    floor = min_completion_time(dfg, table)
    costs = [path_assign(dfg, table, L).cost for L in range(floor, floor + 6)]
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))


@given(dag_with_table())
@settings(**SETTINGS)
def test_loose_deadline_reaches_cheapest(data):
    """With enough slack every algorithm lands on the cheapest sum."""
    dfg, table = data
    loose = sum(int(table.times(n).max()) for n in dfg.nodes()) + 1
    cheapest = sum(table.min_cost(n) for n in dfg.nodes())
    for algo in (greedy_assign, dfg_assign_once, dfg_assign_repeat, exact_assign):
        assert algo(dfg, table, loose).cost == pytest.approx(cheapest)
