"""Property-based tests on scheduling invariants."""

import pytest
from hypothesis import given, settings

from repro.assign.assignment import min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.sched.asap_alap import alap_starts, asap_starts, mobility
from repro.sched.lower_bound import lower_bound_configuration
from repro.sched.min_resource import list_schedule, min_resource_schedule

from .strategies import dag_with_table

SETTINGS = dict(max_examples=50, deadline=None)


def setup(data, extra=2):
    dfg, table = data
    deadline = min_completion_time(dfg, table) + extra
    assignment = dfg_assign_repeat(dfg, table, deadline).assignment
    return dfg, table, assignment, deadline


@given(dag_with_table())
@settings(**SETTINGS)
def test_min_resource_schedule_always_valid(data):
    dfg, table, assignment, deadline = setup(data)
    sched = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
    sched.validate(dfg, table, assignment)
    assert sched.makespan(table) <= deadline


@given(dag_with_table())
@settings(**SETTINGS)
def test_configuration_respects_lower_bound(data):
    dfg, table, assignment, deadline = setup(data)
    lb = lower_bound_configuration(dfg, table, assignment, deadline)
    sched = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
    assert lb.dominates(sched.configuration)


@given(dag_with_table())
@settings(**SETTINGS)
def test_usage_never_exceeds_configuration(data):
    dfg, table, assignment, deadline = setup(data)
    sched = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
    profile = sched.usage_profile(table)
    for j, usage in profile.items():
        assert max(usage, default=0) <= sched.configuration.counts[j]


@given(dag_with_table())
@settings(**SETTINGS)
def test_asap_le_alap(data):
    dfg, table, assignment, deadline = setup(data)
    times = assignment.execution_times(dfg, table)
    asap = asap_starts(dfg, times)
    alap = alap_starts(dfg, times, deadline)
    for n in dfg.nodes():
        assert asap[n] <= alap[n]


@given(dag_with_table())
@settings(**SETTINGS)
def test_mobility_floor_is_global_slack(data):
    """mobility(v) = deadline − longest path through v, so the minimum
    mobility (over critical-path nodes) equals the global slack and no
    node has less."""
    dfg, table, assignment, deadline = setup(data)
    times = assignment.execution_times(dfg, table)
    mob = mobility(dfg, times, deadline)
    from repro.graph.paths import longest_path_time

    slack = deadline - longest_path_time(dfg, times)
    assert min(mob.values()) == slack
    assert all(m >= slack for m in mob.values())


@given(dag_with_table())
@settings(**SETTINGS)
def test_schedule_start_within_window(data):
    """Every scheduled start lies in the node's [ASAP, ALAP] window...
    relaxed: >= ASAP always; <= ALAP is exactly the deadline guarantee."""
    dfg, table, assignment, deadline = setup(data)
    times = assignment.execution_times(dfg, table)
    asap = asap_starts(dfg, times)
    alap = alap_starts(dfg, times, deadline)
    sched = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
    for n in dfg.nodes():
        assert asap[n] <= sched.ops[n].start <= alap[n]


@given(dag_with_table())
@settings(**SETTINGS)
def test_list_schedule_on_achieved_configuration_is_valid(data):
    """Plain list scheduling on the achieved configuration yields a
    valid (precedence- and resource-correct) schedule.  Its makespan
    may exceed the deadline in pathological cases (list-scheduling
    anomalies), which is exactly why Min_R_Scheduling drives placement
    by ALAP deadlines instead."""
    dfg, table, assignment, deadline = setup(data)
    cfg = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline).configuration
    sched = list_schedule(dfg, table, assignment=assignment, configuration=cfg)
    sched.validate(dfg, table, assignment)
