"""Equivalence properties of the incremental DP engine.

The engine promises *identical* results to the non-incremental seed
implementations — same assignments, same costs, same knees — across
arbitrary tables (hypothesis) and the full suite registry (fixed
seeds).  Any divergence is a bug in the cache keying or the traceback,
so these properties compare exactly, not approximately.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.assignment import min_completion_time
from repro.assign.dfg_assign import choose_expansion, dfg_assign_repeat
from repro.assign.frontier import dfg_frontier
from repro.assign.tree_assign import tree_assign, tree_dp
from repro.fu.random_tables import random_table
from repro.suite.registry import benchmark_names, get_benchmark

from .strategies import dag_with_table, tree_with_table


@settings(max_examples=60, deadline=None)
@given(pair=dag_with_table(max_nodes=7), slack=st.integers(0, 6))
def test_incremental_repeat_matches_reference(pair, slack):
    dfg, table = pair
    deadline = min_completion_time(dfg, table) + slack
    ref = dfg_assign_repeat(dfg, table, deadline, incremental=False)
    inc = dfg_assign_repeat(dfg, table, deadline, incremental=True)
    assert dict(inc.assignment.items()) == dict(ref.assignment.items())
    assert inc.cost == ref.cost
    assert inc.completion_time == ref.completion_time


@settings(max_examples=40, deadline=None)
@given(pair=dag_with_table(max_nodes=6), span=st.integers(0, 5))
def test_swept_frontier_matches_reference(pair, span):
    dfg, table = pair
    floor = min_completion_time(dfg, table)
    ref = dfg_frontier(dfg, table, max_deadline=floor + span, incremental=False)
    assert dfg_frontier(dfg, table, max_deadline=floor + span) == ref


@settings(max_examples=40, deadline=None)
@given(
    pair=st.one_of(
        tree_with_table(max_nodes=7, out_tree=True),
        tree_with_table(max_nodes=7, out_tree=False),
    ),
    span=st.integers(0, 6),
)
def test_tree_dp_answers_every_budget(pair, span):
    tree, table = pair
    floor = min_completion_time(tree, table)
    dp = tree_dp(tree, table, floor + span)
    for j in range(floor, floor + span + 1):
        ref = tree_assign(tree, table, j)
        assert dp.traceback_at(j) == dict(ref.assignment.items())
        assert dp.result_at(j).cost == ref.cost


def _spans(name: str):
    """Sweep span per registry graph, bounded by the reference's cost
    (the per-deadline reference loop dominates this test's runtime)."""
    tree_size = len(choose_expansion(get_benchmark(name).dag()))
    return max(2, 600 // max(tree_size, 1))


@pytest.mark.parametrize("name", benchmark_names())
@pytest.mark.parametrize("seed", [0, 24])
def test_registry_equivalence(name, seed):
    dfg = get_benchmark(name).dag()
    table = random_table(dfg, num_types=3, seed=seed)
    expansion = choose_expansion(dfg)
    floor = min_completion_time(dfg, table)
    span = _spans(name)
    for deadline in (floor, floor + span):
        ref = dfg_assign_repeat(
            dfg, table, deadline, expansion=expansion, incremental=False
        )
        inc = dfg_assign_repeat(
            dfg, table, deadline, expansion=expansion, incremental=True
        )
        assert dict(inc.assignment.items()) == dict(ref.assignment.items())
        assert inc.cost == ref.cost
    ref_frontier = dfg_frontier(dfg, table, max_deadline=floor + span, incremental=False)
    assert dfg_frontier(dfg, table, max_deadline=floor + span) == ref_frontier
