"""Bit-identity of the packed engine against the python reference.

The packed kernels promise *exactly* the python incremental engine's
outputs — same curves byte-for-byte, same tracebacks, same stats
counters, same errors — across arbitrary trees/DAGs (hypothesis) plus
the structural edge cases.  The pmap worker-independence checks live
here too (as plain tests: spawning pools inside hypothesis examples
would be both slow and flaky-deadline-prone).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.assignment import min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.assign.frontier import dfg_frontier, tree_frontier
from repro.assign.incremental import IncrementalTreeDP, PackedAssignDP
from repro.engine import DPStats, pmap
from repro.fu.random_tables import random_table
from repro.graph.classify import is_in_forest, is_out_forest
from repro.graph.dfg import DFG
from repro.suite.registry import get_benchmark

from .strategies import dag_with_table, tree_with_table


@st.composite
def out_tree_with_table(draw, max_nodes: int = 7):
    """Out-trees only: the shape both engine classes accept directly."""
    pair = draw(tree_with_table(max_nodes=max_nodes, out_tree=True))
    return pair


@settings(max_examples=60, deadline=None)
@given(pair=out_tree_with_table(), span=st.integers(0, 6))
def test_packed_curves_bitwise_equal(pair, span):
    tree, table = pair
    floor = min_completion_time(tree, table)
    deadline = floor + span
    packed = PackedAssignDP(tree, deadline).refresh(table)
    python = IncrementalTreeDP(tree, deadline).refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), python.total_curve())
    for node in tree.nodes():
        np.testing.assert_array_equal(packed.curve(node), python.curve(node))
    for j in range(floor, deadline + 1):
        assert packed.traceback_at(j) == python.traceback_at(j)


@settings(max_examples=40, deadline=None)
@given(pair=out_tree_with_table(), span=st.integers(0, 4))
def test_packed_pin_rounds_and_stats_parity(pair, span):
    tree, table = pair
    deadline = min_completion_time(tree, table) + span
    packed = PackedAssignDP(tree, deadline, stats=DPStats()).refresh(table)
    python = IncrementalTreeDP(tree, deadline, stats=DPStats()).refresh(table)
    nodes = list(tree.nodes())
    for node in nodes[: min(3, len(nodes))]:
        pinned = table.with_fixed(node, 0)
        for t in (pinned, table):
            packed.refresh(t)
            python.refresh(t)
            np.testing.assert_array_equal(
                packed.total_curve(), python.total_curve()
            )
            # a pin may push the floor past the deadline; then both
            # engines must raise the same InfeasibleError instead
            if packed.min_feasible() in range(0, deadline + 1):
                assert packed.traceback_at(deadline) == (
                    python.traceback_at(deadline)
                )
            else:
                from repro.errors import InfeasibleError

                with pytest.raises(InfeasibleError) as got_packed:
                    packed.traceback_at(deadline)
                with pytest.raises(InfeasibleError) as got_python:
                    python.traceback_at(deadline)
                assert str(got_packed.value) == str(got_python.value)
    assert packed.stats.as_dict()["nodes_visited"] == (
        python.stats.as_dict()["nodes_visited"]
    )
    assert packed.stats.nodes_recomputed == python.stats.nodes_recomputed
    assert packed.stats.cache_hits == python.stats.cache_hits
    assert packed.cache_entries() == python.cache_entries()


@settings(max_examples=50, deadline=None)
@given(pair=dag_with_table(max_nodes=7), slack=st.integers(0, 6))
def test_packed_repeat_matches_python_kernel(pair, slack):
    dfg, table = pair
    deadline = min_completion_time(dfg, table) + slack
    packed = dfg_assign_repeat(dfg, table, deadline)
    python = dfg_assign_repeat(dfg, table, deadline, kernel="python")
    assert dict(packed.assignment.items()) == dict(python.assignment.items())
    assert packed.cost == python.cost
    assert packed.completion_time == python.completion_time


@settings(max_examples=30, deadline=None)
@given(pair=dag_with_table(max_nodes=6), span=st.integers(0, 5))
def test_packed_frontier_matches_python_kernel(pair, span):
    dfg, table = pair
    floor = min_completion_time(dfg, table)
    packed = dfg_frontier(dfg, table, max_deadline=floor + span)
    python = dfg_frontier(
        dfg, table, max_deadline=floor + span, kernel="python"
    )
    assert packed == python
    if is_out_forest(dfg) or is_in_forest(dfg):
        assert tree_frontier(
            dfg, table, max_deadline=floor + span
        ) == tree_frontier(
            dfg, table, max_deadline=floor + span, kernel="python"
        )


# ----------------------------------------------------------------------
# structural edge cases (exact, not property-based)
# ----------------------------------------------------------------------
def test_empty_forest_identical():
    from repro.fu.table import TimeCostTable

    empty = DFG(name="empty")
    table = TimeCostTable(2)
    packed = PackedAssignDP(empty, 3).refresh(table)
    python = IncrementalTreeDP(empty, 3).refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), python.total_curve())
    assert packed.traceback_at(3) == {} == python.traceback_at(3)
    assert packed.min_feasible() == python.min_feasible() == 0


def test_single_node_identical():
    one = DFG(name="one")
    one.add_node("x", op="mul")
    table = random_table(one, num_types=3, seed=4)
    packed = PackedAssignDP(one, 9).refresh(table)
    python = IncrementalTreeDP(one, 9).refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), python.total_curve())
    assert packed.traceback_at(9) == python.traceback_at(9)


def test_infeasible_deadline_identical_errors():
    from repro.errors import InfeasibleError

    tree = DFG.from_edges([("a", "b"), ("b", "c")], name="chain")
    table = random_table(tree, num_types=3, seed=4)
    packed = PackedAssignDP(tree, 0).refresh(table)
    python = IncrementalTreeDP(tree, 0).refresh(table)
    with pytest.raises(InfeasibleError) as got_packed:
        packed.traceback_at(0)
    with pytest.raises(InfeasibleError) as got_python:
        python.traceback_at(0)
    assert str(got_packed.value) == str(got_python.value)
    assert got_packed.value.min_feasible == got_python.value.min_feasible


# ----------------------------------------------------------------------
# pmap worker-independence (plain tests; spawn pools once)
# ----------------------------------------------------------------------
def _pin_key(x: int) -> tuple:
    return (x % 5, -x, x)


def test_pmap_results_independent_of_worker_count():
    items = list(range(40))
    serial = pmap(_pin_key, items, workers=0)
    assert pmap(_pin_key, items, workers=2) == serial
    assert pmap(_pin_key, items, workers=2, chunk_size=3) == serial


def test_repeat_workers_independent_on_benchmark():
    dfg = get_benchmark("paper_example").dag()
    table = random_table(dfg, num_types=3, seed=1)
    deadline = min_completion_time(dfg, table) + 4
    serial = dfg_assign_repeat(dfg, table, deadline, workers=0)
    fanned = dfg_assign_repeat(dfg, table, deadline, workers=2)
    assert dict(serial.assignment.items()) == dict(fanned.assignment.items())
    assert serial.cost == fanned.cost
    frontier_serial = dfg_frontier(dfg, table, max_deadline=deadline)
    frontier_fanned = dfg_frontier(
        dfg, table, max_deadline=deadline, workers=2
    )
    assert frontier_serial == frontier_fanned
