"""Property-based tests on graph invariants (expansion, paths, IO)."""

from hypothesis import given, settings

from repro.assign.dfg_expand import dfg_expand
from repro.graph.classify import duplication_count, is_out_forest
from repro.graph.io import from_json, to_json
from repro.graph.paths import (
    count_root_leaf_paths,
    enumerate_root_leaf_paths,
    longest_path_time,
)

from .strategies import dags, dag_with_table

SETTINGS = dict(max_examples=80, deadline=None)


@given(dags())
@settings(**SETTINGS)
def test_expansion_is_out_forest(dfg):
    assert is_out_forest(dfg_expand(dfg).tree)


@given(dags())
@settings(**SETTINGS)
def test_expansion_size_formula(dfg):
    """|expanded| = |V| + Σ (root→v paths − 1), predicted statically."""
    tree = dfg_expand(dfg)
    assert len(tree) == len(dfg) + duplication_count(dfg)


@given(dags())
@settings(**SETTINGS)
def test_expansion_preserves_path_multiset(dfg):
    tree = dfg_expand(dfg)
    original = sorted(
        tuple(p) for p in enumerate_root_leaf_paths(dfg)
    )
    expanded = sorted(
        tuple(tree.origin[n] for n in p)
        for p in enumerate_root_leaf_paths(tree.tree)
    )
    assert original == expanded


@given(dag_with_table())
@settings(**SETTINGS)
def test_expansion_preserves_longest_path(data):
    """Any per-original times give the same completion on both graphs."""
    dfg, table = data
    tree = dfg_expand(dfg)
    times = {n: table.min_time(n) for n in dfg.nodes()}
    tree_times = {n: times[tree.origin[n]] for n in tree.tree.nodes()}
    assert longest_path_time(dfg, times) == longest_path_time(
        tree.tree, tree_times
    )


@given(dags())
@settings(**SETTINGS)
def test_path_count_invariant_under_expansion(dfg):
    tree = dfg_expand(dfg)
    assert count_root_leaf_paths(dfg) == count_root_leaf_paths(tree.tree)


@given(dags())
@settings(**SETTINGS)
def test_transpose_involution(dfg):
    assert dfg.transpose().transpose() == dfg


@given(dags())
@settings(**SETTINGS)
def test_transpose_preserves_longest_path(dfg):
    times = {n: 1 + (hash(n) % 3) for n in dfg.nodes()}
    assert longest_path_time(dfg, times) == longest_path_time(
        dfg.transpose(), times
    )


@given(dags())
@settings(**SETTINGS)
def test_json_roundtrip(dfg):
    assert from_json(to_json(dfg)) == dfg
