"""Public API surface checks for the open-source release.

Every name advertised in an ``__all__`` must exist, be importable from
the advertised location, and carry a docstring — the contract a
downstream user relies on.
"""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graph",
    "repro.fu",
    "repro.assign",
    "repro.sched",
    "repro.retiming",
    "repro.sim",
    "repro.obs",
    "repro.suite",
    "repro.report",
    "repro.synthesis",
    "repro.verify",
    "repro.errors",
    "repro.cli",
    "repro.apiutil",
    "repro.io",
    "repro.serve",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
class TestModuleSurface:
    def test_importable_with_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__, f"{modname} lacks a module docstring"

    def test_all_names_resolve(self, modname):
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{modname}.__all__ lists missing {name}"

    def test_public_callables_documented(self, modname):
        mod = importlib.import_module(modname)
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            # only check functions/classes defined inside this package
            # (type aliases and re-exported builtins carry no docstring)
            if not callable(obj):
                continue
            if not str(getattr(obj, "__module__", "")).startswith("repro"):
                continue
            if not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, f"{modname}: undocumented {undocumented}"


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_imports(self):
        """The exact imports the README's quickstart uses."""
        from repro import min_completion_time, synthesize  # noqa: F401
        from repro.fu import random_table  # noqa: F401
        from repro.suite import differential_equation_solver  # noqa: F401

    def test_algorithms_exposed_at_top_level(self):
        import repro

        for name in (
            "path_assign",
            "tree_assign",
            "dfg_assign_once",
            "dfg_assign_repeat",
            "greedy_assign",
            "exact_assign",
        ):
            assert callable(getattr(repro, name))

    def test_errors_catchable_from_top_level(self):
        import repro

        assert issubclass(repro.InfeasibleError, repro.ReproError)

    def test_cli_entry_point_matches_pyproject(self):
        from repro.cli import main

        assert callable(main)


class TestFacadeKeywordOnly:
    """Runtime twin of lintkit RL010: optional knobs are keyword-only.

    A defaulted positional on a documented entry point lets a later
    option-insert silently re-map existing positional call sites; the
    static rule and this test pin the contract from both sides.
    """

    def test_root_facade_defaulted_params_are_keyword_only(self):
        import inspect

        import repro

        offenders = {}
        for name in repro.__all__:
            obj = inspect.unwrap(getattr(repro, name))
            if not inspect.isfunction(obj):
                continue
            sig = inspect.signature(obj)
            bad = [
                p.name
                for p in sig.parameters.values()
                if p.default is not inspect.Parameter.empty
                and p.kind
                in (
                    inspect.Parameter.POSITIONAL_ONLY,
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                )
            ]
            if bad:
                offenders[name] = bad
        assert offenders == {}

    def test_legacy_positionals_still_work_with_warning(self, monkeypatch):
        """The migration shims keep old positional call sites running
        (outside the v1 freeze, which the suite otherwise runs under)."""
        import warnings

        import repro.apiutil
        from repro.assign.dfg_expand import dfg_expand
        from repro.graph.dfg import DFG

        monkeypatch.setattr(repro.apiutil, "STRICT_API", False)
        dfg = DFG("legacy")
        dfg.add_node("a", "mul")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            expanded = dfg_expand(dfg, 1000)  # legacy: node_limit positional
        assert expanded is not None
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_strict_api_rejects_legacy_positionals(self):
        """Under the v1 freeze the same call is a hard TypeError."""
        from repro.assign.dfg_expand import dfg_expand
        from repro.graph.dfg import DFG

        dfg = DFG("legacy")
        dfg.add_node("a", "mul")
        with pytest.raises(TypeError, match="STRICT_API"):
            dfg_expand(dfg, 1000)


class TestResultSchema:
    """The versioned SynthesisResult JSON document is a pinned surface.

    Downstream consumers (the serve cache, the ``synth --json`` CLI,
    external tooling) key on ``schema_version``; any shape change must
    bump it and update this pin.
    """

    @pytest.fixture(scope="class")
    def result_doc(self):
        import json

        from repro.fu.random_tables import random_table
        from repro.suite.registry import get_benchmark
        from repro.synthesis import synthesize

        dfg = get_benchmark("biquad2").dag()
        table = random_table(dfg, num_types=3, seed=2004)
        result = synthesize(dfg, table, 60)
        return json.loads(result.to_json())

    def test_schema_version_pinned(self, result_doc):
        from repro.synthesis import RESULT_SCHEMA_VERSION

        assert RESULT_SCHEMA_VERSION == 1
        assert result_doc["schema_version"] == 1

    def test_top_level_shape(self, result_doc):
        assert set(result_doc) == {
            "schema_version",
            "cost",
            "completion_time",
            "deadline",
            "algorithm",
            "optimal",
            "assignment",
            "configuration",
            "lower_bound",
            "schedule",
            "timings",
        }

    def test_value_types(self, result_doc):
        assert isinstance(result_doc["cost"], float)
        assert isinstance(result_doc["completion_time"], int)
        assert result_doc["optimal"] is None or isinstance(
            result_doc["optimal"], bool
        )  # tri-state: None = optimality unknown
        assert all(
            isinstance(v, int) for v in result_doc["assignment"].values()
        )
        assert all(isinstance(c, int) for c in result_doc["configuration"])
        for op in result_doc["schedule"].values():
            assert set(op) == {"start", "fu_type", "fu_index"}

    def test_schedule_keys_match_assignment(self, result_doc):
        assert set(result_doc["schedule"]) == set(result_doc["assignment"])


class TestDpMetricsTable:
    """The RL009 literal metric table stays in sync with DPStats."""

    def test_keys_mirror_dpstats_counters(self):
        from repro.assign.dfg_assign import _DP_METRICS
        from repro.assign.incremental import DPStats

        assert set(_DP_METRICS) == set(DPStats().as_dict())

    def test_values_match_registered_obs_pattern(self):
        from repro.assign.dfg_assign import _DP_METRICS
        from repro.obs import OBS_NAME_RE

        assert all(OBS_NAME_RE.fullmatch(v) for v in _DP_METRICS.values())
