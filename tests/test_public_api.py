"""Public API surface checks for the open-source release.

Every name advertised in an ``__all__`` must exist, be importable from
the advertised location, and carry a docstring — the contract a
downstream user relies on.
"""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graph",
    "repro.fu",
    "repro.assign",
    "repro.sched",
    "repro.retiming",
    "repro.sim",
    "repro.obs",
    "repro.suite",
    "repro.report",
    "repro.synthesis",
    "repro.verify",
    "repro.errors",
    "repro.cli",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
class TestModuleSurface:
    def test_importable_with_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__, f"{modname} lacks a module docstring"

    def test_all_names_resolve(self, modname):
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{modname}.__all__ lists missing {name}"

    def test_public_callables_documented(self, modname):
        mod = importlib.import_module(modname)
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            # only check functions/classes defined inside this package
            # (type aliases and re-exported builtins carry no docstring)
            if not callable(obj):
                continue
            if not str(getattr(obj, "__module__", "")).startswith("repro"):
                continue
            if not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, f"{modname}: undocumented {undocumented}"


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_imports(self):
        """The exact imports the README's quickstart uses."""
        from repro import min_completion_time, synthesize  # noqa: F401
        from repro.fu import random_table  # noqa: F401
        from repro.suite import differential_equation_solver  # noqa: F401

    def test_algorithms_exposed_at_top_level(self):
        import repro

        for name in (
            "path_assign",
            "tree_assign",
            "dfg_assign_once",
            "dfg_assign_repeat",
            "greedy_assign",
            "exact_assign",
        ):
            assert callable(getattr(repro, name))

    def test_errors_catchable_from_top_level(self):
        import repro

        assert issubclass(repro.InfeasibleError, repro.ReproError)

    def test_cli_entry_point_matches_pyproject(self):
        from repro.cli import main

        assert callable(main)


class TestFacadeKeywordOnly:
    """Runtime twin of lintkit RL010: optional knobs are keyword-only.

    A defaulted positional on a documented entry point lets a later
    option-insert silently re-map existing positional call sites; the
    static rule and this test pin the contract from both sides.
    """

    def test_root_facade_defaulted_params_are_keyword_only(self):
        import inspect

        import repro

        offenders = {}
        for name in repro.__all__:
            obj = inspect.unwrap(getattr(repro, name))
            if not inspect.isfunction(obj):
                continue
            sig = inspect.signature(obj)
            bad = [
                p.name
                for p in sig.parameters.values()
                if p.default is not inspect.Parameter.empty
                and p.kind
                in (
                    inspect.Parameter.POSITIONAL_ONLY,
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                )
            ]
            if bad:
                offenders[name] = bad
        assert offenders == {}

    def test_legacy_positionals_still_work_with_warning(self):
        """The migration shims keep old positional call sites running."""
        import warnings

        from repro.assign.dfg_expand import dfg_expand
        from repro.graph.dfg import DFG

        dfg = DFG("legacy")
        dfg.add_node("a", "mul")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            expanded = dfg_expand(dfg, 1000)  # legacy: node_limit positional
        assert expanded is not None
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )


class TestDpMetricsTable:
    """The RL009 literal metric table stays in sync with DPStats."""

    def test_keys_mirror_dpstats_counters(self):
        from repro.assign.dfg_assign import _DP_METRICS
        from repro.assign.incremental import DPStats

        assert set(_DP_METRICS) == set(DPStats().as_dict())

    def test_values_match_registered_obs_pattern(self):
        from repro.assign.dfg_assign import _DP_METRICS
        from repro.obs import OBS_NAME_RE

        assert all(OBS_NAME_RE.fullmatch(v) for v in _DP_METRICS.values())
