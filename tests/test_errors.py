"""Unit tests for the exception hierarchy and error ergonomics."""

import pytest

from repro.errors import (
    AssignError,
    CyclicDependencyError,
    GraphError,
    InfeasibleError,
    LintError,
    NotAPathError,
    NotATreeError,
    ObsError,
    ReportError,
    ReproError,
    ScheduleError,
    TableError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            CyclicDependencyError,
            NotAPathError,
            NotATreeError,
            TableError,
            AssignError,
            InfeasibleError,
            ScheduleError,
            ReportError,
            LintError,
            ObsError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_graph_family(self):
        for exc in (CyclicDependencyError, NotAPathError, NotATreeError):
            assert issubclass(exc, GraphError)

    def test_single_catch_covers_library(self):
        """One except clause catches anything the library raises."""
        from repro.graph.dfg import DFG

        with pytest.raises(ReproError):
            DFG().op("missing")


class TestInfeasibleError:
    def test_carries_min_feasible(self):
        exc = InfeasibleError("too tight", min_feasible=42)
        assert exc.min_feasible == 42
        assert "too tight" in str(exc)

    def test_min_feasible_optional(self):
        assert InfeasibleError("no bound").min_feasible is None

    def test_propagates_from_algorithms(self, chain3, chain3_table):
        from repro.assign.path_assign import path_assign

        with pytest.raises(InfeasibleError) as info:
            path_assign(chain3, chain3_table, 0)
        assert info.value.min_feasible is not None
