"""Integration tests asserting the paper's reproduced claims.

Each test names the claim in the paper it checks.  These are the
"shape" guarantees of the reproduction: not the garbled absolute
numbers, but who wins, where, and why.
"""

import pytest

from repro.assign import (
    dfg_assign_once,
    dfg_assign_repeat,
    exact_assign,
    greedy_assign,
    min_completion_time,
    tree_assign,
)
from repro.fu.random_tables import random_table
from repro.report.experiments import (
    DEFAULT_SEED,
    average_reduction,
    run_table1,
    run_table2,
)
from repro.sched import lower_bound_configuration, min_resource_schedule
from repro.suite.registry import get_benchmark


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(seed=DEFAULT_SEED, count=4)


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(seed=DEFAULT_SEED, count=4)


class TestTable1Claims:
    def test_tree_benchmarks_heuristics_hit_optimum(self, table1_rows):
        """'When the given DFG is a tree, DFG_Assign_Once and
        DFG_Assign_Repeat both give the optimal solution.'"""
        for row in table1_rows:
            assert row.tree_cost is not None
            assert row.once_cost == pytest.approx(row.tree_cost)
            assert row.repeat_cost == pytest.approx(row.tree_cost)

    def test_optimal_never_above_greedy(self, table1_rows):
        for row in table1_rows:
            assert row.tree_cost <= row.greedy_cost + 1e-9

    def test_positive_average_reduction(self, table1_rows):
        """The experiments show a real gap between greedy and the DP."""
        assert average_reduction(table1_rows, "repeat") > 0.0

    def test_tree_assign_certified_optimal(self):
        """Cross-check Tree_Assign against branch-and-bound on the
        4-stage lattice (the paper had only the ILP for this)."""
        dfg = get_benchmark("lattice4").dag()
        table = random_table(dfg, num_types=3, seed=DEFAULT_SEED)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 3, floor + 9):
            dp = tree_assign(dfg, table, deadline)
            bb = exact_assign(dfg, table, deadline)
            assert dp.cost == pytest.approx(bb.cost)


class TestTable2Claims:
    def test_heuristics_never_lose_to_greedy(self, table2_rows):
        for row in table2_rows:
            assert row.once_cost <= row.greedy_cost + 1e-9
            assert row.repeat_cost <= row.greedy_cost + 1e-9

    def test_repeat_never_worse_than_once(self, table2_rows):
        for row in table2_rows:
            assert row.repeat_cost <= row.once_cost + 1e-9

    def test_repeat_strictly_wins_somewhere_on_elliptic(self):
        """'In elliptic filter, the number of duplicated nodes is
        relatively big, so DFG_Assign_Repeat gives better results than
        DFG_Assign_Once.'  (Checked at the seed of record.)"""
        dfg = get_benchmark("elliptic").dag()
        table = random_table(dfg, num_types=3, seed=DEFAULT_SEED)
        floor = min_completion_time(dfg, table)
        step = max(1, round(0.15 * floor))
        wins = 0
        for deadline in [floor + i * step for i in range(6)]:
            once = dfg_assign_once(dfg, table, deadline)
            repeat = dfg_assign_repeat(dfg, table, deadline)
            if repeat.cost < once.cost - 1e-9:
                wins += 1
        assert wins >= 1

    def test_small_duplication_benchmarks_similar(self):
        """'In differential equation solver and RLS-laguerre lattice
        filter, the number of duplicated nodes is small, so the two
        algorithms give the similar results.'"""
        for name in ("diffeq", "rls_laguerre"):
            dfg = get_benchmark(name).dag()
            table = random_table(dfg, num_types=3, seed=DEFAULT_SEED)
            floor = min_completion_time(dfg, table)
            gaps = []
            for deadline in (floor, floor + 2, floor + 5):
                once = dfg_assign_once(dfg, table, deadline)
                repeat = dfg_assign_repeat(dfg, table, deadline)
                gaps.append((once.cost - repeat.cost) / once.cost)
            assert max(gaps) < 0.05  # within 5%: "similar results"


class TestHeadlineClaims:
    def test_average_reductions_positive_and_ordered(
        self, table1_rows, table2_rows
    ):
        """'On average, DFG_Assign_Once gives a reduction of ...% and
        DFG_Assign_Repeat gives a reduction of ...% on system cost
        compared with the greedy algorithm' — both positive, Repeat at
        least Once, and in a plausible double-digit-adjacent range."""
        rows = table1_rows + table2_rows
        once = average_reduction(rows, "once")
        repeat = average_reduction(rows, "repeat")
        assert 0.0 < once < 0.6
        assert 0.0 < repeat < 0.6
        assert repeat >= once - 1e-12

    def test_repeat_recommended(self, table2_rows):
        """'DFG_Assign_Repeat is recommended ... it performs best.'"""
        assert average_reduction(table2_rows, "repeat") >= average_reduction(
            table2_rows, "once"
        )


class TestSchedulingClaims:
    @pytest.mark.parametrize(
        "name", ["lattice4", "volterra", "diffeq", "elliptic", "rls_laguerre"]
    )
    def test_min_resource_schedule_meets_every_deadline(self, name):
        """Phase 2 always produces a feasible configuration+schedule
        (the paper's 'generate a schedule and a feasible configuration
        that uses as little resource as possible')."""
        dfg = get_benchmark(name).dag()
        table = random_table(dfg, num_types=3, seed=DEFAULT_SEED)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 4):
            assignment = dfg_assign_repeat(dfg, table, deadline).assignment
            schedule = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
            schedule.validate(dfg, table, assignment)
            assert schedule.makespan(table) <= deadline
            lb = lower_bound_configuration(dfg, table, assignment, deadline)
            assert lb.dominates(schedule.configuration)

    def test_relaxing_deadline_shrinks_configuration(self):
        """Figure 3's point: the same workload needs fewer FUs when the
        schedule has more slack."""
        dfg = get_benchmark("lattice8").dag()
        table = random_table(dfg, num_types=3, seed=DEFAULT_SEED)
        floor = min_completion_time(dfg, table)
        assignment = tree_assign(dfg, table, floor).assignment
        tight = min_resource_schedule(dfg, table, assignment=assignment, deadline=floor)
        loose = min_resource_schedule(dfg, table, assignment=assignment, deadline=floor * 3)
        assert (
            loose.configuration.total_units()
            < tight.configuration.total_units()
        )


class TestMotivationalExample:
    def test_optimal_beats_naive_assignment(self):
        """Figures 1–2: the DP assignment is substantially cheaper than
        a naive one under the same deadline."""
        from repro.suite.paper_example import (
            PAPER_EXAMPLE_DEADLINE,
            paper_example_dfg,
            paper_example_table,
        )

        dfg = paper_example_dfg()
        table = paper_example_table()
        optimal = tree_assign(dfg, table, PAPER_EXAMPLE_DEADLINE)
        greedy = greedy_assign(dfg, table, PAPER_EXAMPLE_DEADLINE)
        exact = exact_assign(dfg, table, PAPER_EXAMPLE_DEADLINE)
        assert optimal.cost == pytest.approx(exact.cost)
        assert optimal.cost <= greedy.cost

    def test_example_schedule_configurations_differ(self):
        """Figure 3: a naive binding uses more FUs than Min_R."""
        from repro.suite.paper_example import (
            PAPER_EXAMPLE_DEADLINE,
            paper_example_dfg,
            paper_example_table,
        )
        from repro.sched import Configuration

        dfg = paper_example_dfg()
        table = paper_example_table()
        result = tree_assign(dfg, table, PAPER_EXAMPLE_DEADLINE)
        sched = min_resource_schedule(
            dfg, table, assignment=result.assignment, deadline=PAPER_EXAMPLE_DEADLINE
        )
        # one FU per node would also be a legal configuration; Min_R uses
        # strictly fewer units than that trivial binding
        assert sched.configuration.total_units() < len(dfg)
