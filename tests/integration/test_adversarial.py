"""Adversarial and degenerate instances across the whole stack.

Edge regimes that unit tests' "reasonable" tables never hit: total
ties, free options, single-type libraries, zero slack everywhere,
wide-flat and deep-thin graphs.
"""

import pytest

from repro.assign import (
    Assignment,
    brute_force_assign,
    dfg_assign_once,
    dfg_assign_repeat,
    exact_assign,
    greedy_assign,
    min_completion_time,
    tree_assign,
)
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.sched import min_resource_schedule
from repro.synthesis import synthesize


class TestDegenerateTables:
    def test_all_types_identical(self, wide_dag):
        """Total tie: any assignment is optimal; everything must still
        run and agree."""
        table = TimeCostTable.from_rows(
            {n: ([2, 2, 2], [5.0, 5.0, 5.0]) for n in wide_dag.nodes()}
        )
        floor = min_completion_time(wide_dag, table)
        expected = 5.0 * len(wide_dag)
        for algo in (greedy_assign, dfg_assign_once, dfg_assign_repeat, exact_assign):
            result = algo(wide_dag, table, floor)
            result.verify(wide_dag, table)
            assert result.cost == pytest.approx(expected)

    def test_zero_cost_options(self, small_tree):
        """Free types exist: the optimum is exactly 0."""
        table = TimeCostTable.from_rows(
            {n: ([1, 5], [9.0, 0.0]) for n in small_tree.nodes()}
        )
        loose = 5 * len(small_tree)
        result = tree_assign(small_tree, table, loose)
        assert result.cost == 0.0

    def test_single_type_library(self, wide_dag):
        """M = 1 collapses the problem to a feasibility check."""
        table = TimeCostTable.from_rows(
            {n: ([2], [3.0]) for n in wide_dag.nodes()}
        )
        floor = min_completion_time(wide_dag, table)
        for algo in (greedy_assign, dfg_assign_once, dfg_assign_repeat):
            result = algo(wide_dag, table, floor)
            assert result.cost == pytest.approx(3.0 * len(wide_dag))
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            greedy_assign(wide_dag, table, floor - 1)

    def test_dominated_fast_type(self, chain3):
        """A type that is both slower and more expensive must never be
        chosen by the optimum."""
        table = TimeCostTable.from_rows(
            {
                n: ([1, 5], [2.0, 9.0])  # type 1 strictly dominated
                for n in chain3.nodes()
            }
        )
        result = exact_assign(chain3, table, 100)
        assert all(k == 0 for k in dict(result.assignment.items()).values())

    def test_inverted_ladder(self, chain3):
        """Faster AND cheaper (no trade-off): everything picks type 0."""
        table = TimeCostTable.from_rows(
            {n: ([1, 9], [1.0, 50.0]) for n in chain3.nodes()}
        )
        for algo in (greedy_assign, dfg_assign_repeat):
            result = algo(chain3, table, 100)
            assert result.cost == pytest.approx(1.0 * len(chain3))


class TestDegenerateShapes:
    def test_totally_disconnected(self):
        dfg = DFG()
        for i in range(6):
            dfg.add_node(f"v{i}")
        table = TimeCostTable.from_rows(
            {f"v{i}": ([1, 3], [8.0, 2.0]) for i in range(6)}
        )
        # deadline 3 lets every node take the cheap slow type
        result = dfg_assign_repeat(dfg, table, 3)
        assert result.cost == pytest.approx(12.0)
        schedule = min_resource_schedule(dfg, table, assignment=result.assignment, deadline=3)
        schedule.validate(dfg, table, result.assignment)
        # all 6 run concurrently -> six instances of the slow type
        assert schedule.configuration.counts[1] == 6

    def test_single_node_graph(self):
        dfg = DFG()
        dfg.add_node("only")
        table = TimeCostTable.from_rows({"only": ([2, 4], [9.0, 1.0])})
        result = synthesize(dfg, table, 4)
        result.verify(dfg, table)
        assert result.cost == pytest.approx(1.0)
        assert result.configuration.total_units() == 1

    def test_deep_chain(self):
        """200-node chain: exercises recursion-free implementations."""
        dfg = DFG()
        prev = None
        rows = {}
        for i in range(200):
            n = f"v{i}"
            dfg.add_node(n)
            rows[n] = ([1, 2], [3.0, 1.0])
            if prev:
                dfg.add_edge(prev, n, 0)
            prev = n
        table = TimeCostTable.from_rows(rows)
        deadline = 300  # 100 nodes can be slow
        from repro.assign import path_assign

        result = path_assign(dfg, table, deadline)
        # optimal: 100 slow (cost 1) + 100 fast (cost 3)
        assert result.cost == pytest.approx(100 * 1.0 + 100 * 3.0)
        # the tree DP agrees on the same chain
        assert tree_assign(dfg, table, deadline).cost == pytest.approx(
            result.cost
        )

    def test_wide_flat_graph(self):
        """1 root feeding 50 leaves: expansion is the identity
        (out-tree), schedule width is resource-driven."""
        dfg = DFG()
        dfg.add_node("root")
        rows = {"root": ([1, 2], [4.0, 1.0])}
        for i in range(50):
            n = f"leaf{i}"
            dfg.add_edge("root", n, 0)
            rows[n] = ([1, 2], [4.0, 1.0])
        table = TimeCostTable.from_rows(rows)
        result = synthesize(dfg, table, 4)
        result.verify(dfg, table)

    def test_zero_slack_everywhere(self, wide_dag):
        """At the exact floor every node on a critical path is pinned
        to its fastest type; scheduling still succeeds."""
        table = TimeCostTable.from_rows(
            {n: ([1, 4], [6.0, 1.0]) for n in wide_dag.nodes()}
        )
        floor = min_completion_time(wide_dag, table)
        result = synthesize(wide_dag, table, floor)
        result.verify(wide_dag, table)
        assert result.schedule.makespan(table) == floor


class TestConsistencyUnderTies:
    @pytest.mark.parametrize("seed", range(4))
    def test_tied_costs_still_optimal(self, seed):
        """Many equal-cost options: the DPs must still match brute
        force (tie-breaking must not lose optimality)."""
        import numpy as np

        from repro.suite.synthetic import random_tree

        gen = np.random.default_rng(seed)
        tree = random_tree(7, seed=seed)
        rows = {}
        for n in tree.nodes():
            t = sorted(int(x) for x in gen.integers(1, 4, size=3))
            c = float(gen.integers(1, 3))
            rows[n] = (t, [c, c, c])  # identical costs, varied times
        table = TimeCostTable.from_rows(rows)
        floor = min_completion_time(tree, table)
        for deadline in (floor, floor + 2):
            got = tree_assign(tree, table, deadline)
            want = brute_force_assign(tree, table, deadline)
            assert got.cost == pytest.approx(want.cost)
