"""Cross-algorithm consistency on shared instances.

Complements the hypothesis properties with heavier, deterministic
sweeps across the whole algorithm stack on one instance family.
"""

import pytest

from repro.assign import (
    brute_force_assign,
    dfg_assign_once,
    dfg_assign_repeat,
    exact_assign,
    greedy_assign,
    min_completion_time,
    path_assign,
    tree_assign,
)
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag, random_path, random_tree
from repro.synthesis import synthesize


class TestAlgorithmSandwich:
    """exact == brute force <= {once, repeat} <= greedy-ish bounds."""

    @pytest.mark.parametrize("seed", range(5))
    def test_full_stack_on_random_dags(self, seed):
        dfg = random_dag(10, edge_prob=0.3, seed=200 + seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 3, floor + 8):
            bf = brute_force_assign(dfg, table, deadline)
            ex = exact_assign(dfg, table, deadline)
            on = dfg_assign_once(dfg, table, deadline)
            re = dfg_assign_repeat(dfg, table, deadline)
            gr = greedy_assign(dfg, table, deadline)
            assert ex.cost == pytest.approx(bf.cost)
            for r in (on, re, gr):
                r.verify(dfg, table)
                assert r.cost >= ex.cost - 1e-9
            assert re.cost <= on.cost + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_specialized_solvers_agree_on_paths(self, seed):
        dfg = random_path(7, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 5):
            costs = {
                "path": path_assign(dfg, table, deadline).cost,
                "tree": tree_assign(dfg, table, deadline).cost,
                "exact": exact_assign(dfg, table, deadline).cost,
                "once": dfg_assign_once(dfg, table, deadline).cost,
                "repeat": dfg_assign_repeat(dfg, table, deadline).cost,
            }
            assert len({round(c, 6) for c in costs.values()}) == 1, costs

    @pytest.mark.parametrize("out_tree", [True, False])
    def test_specialized_solvers_agree_on_trees(self, out_tree):
        for seed in range(4):
            dfg = random_tree(9, seed=seed, out_tree=out_tree)
            table = random_table(dfg, num_types=3, seed=seed)
            floor = min_completion_time(dfg, table)
            for deadline in (floor, floor + 6):
                costs = {
                    "tree": tree_assign(dfg, table, deadline).cost,
                    "exact": exact_assign(dfg, table, deadline).cost,
                    "once": dfg_assign_once(dfg, table, deadline).cost,
                    "repeat": dfg_assign_repeat(dfg, table, deadline).cost,
                }
                assert len({round(c, 6) for c in costs.values()}) == 1, costs


class TestSynthesisAcrossAlgorithms:
    @pytest.mark.parametrize(
        "algorithm", ["greedy", "once", "repeat", "exact"]
    )
    def test_every_algorithm_schedules_cleanly(self, algorithm):
        dfg = random_dag(12, edge_prob=0.25, seed=42)
        table = random_table(dfg, num_types=3, seed=42)
        deadline = min_completion_time(dfg, table) + 4
        result = synthesize(dfg, table, deadline, algorithm=algorithm)
        result.verify(dfg, table)

    def test_cheaper_assignments_never_invalidate_scheduling(self):
        """Phase 2 must succeed regardless of which phase-1 algorithm
        produced the assignment — including the cost-extremes."""
        dfg = random_dag(14, edge_prob=0.3, seed=77)
        table = random_table(dfg, num_types=3, seed=77)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 10, floor + 40):
            for algorithm in ("greedy", "repeat"):
                result = synthesize(dfg, table, deadline, algorithm=algorithm)
                result.verify(dfg, table)
                assert result.schedule.makespan(table) <= deadline
