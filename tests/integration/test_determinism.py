"""Stack-wide determinism: identical inputs → bit-identical outputs.

The documentation promises deterministic behaviour everywhere (tie
breaks by type index / insertion order, seeded tables).  These tests
hold every layer to it by running each pipeline twice and comparing
the *complete* outputs, not just costs — a regression to nondeterminism
(e.g. iterating over an unordered set) fails here even when the costs
happen to agree.
"""

import pytest

from repro.assign import (
    dfg_assign_once,
    dfg_assign_repeat,
    downgrade_assign,
    exact_assign,
    greedy_assign,
    min_completion_time,
    tree_assign,
)
from repro.assign.dfg_assign import choose_expansion
from repro.assign.frontier import dfg_frontier, tree_frontier
from repro.fu.random_tables import random_table
from repro.suite.registry import get_benchmark
from repro.synthesis import synthesize


def _twice(fn):
    return fn(), fn()


class TestAssignmentDeterminism:
    @pytest.mark.parametrize(
        "algo",
        [greedy_assign, downgrade_assign, dfg_assign_once, dfg_assign_repeat,
         exact_assign],
    )
    def test_algorithms_repeat_exactly(self, algo):
        # exact search needs the small benchmark to stay within budget
        name = "diffeq" if algo is exact_assign else "rls_laguerre"
        dfg = get_benchmark(name).dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 4
        a, b = _twice(lambda: algo(dfg, table, deadline))
        assert dict(a.assignment.items()) == dict(b.assignment.items())
        assert a.cost == b.cost

    def test_tree_dp_traceback_stable(self):
        dfg = get_benchmark("lattice8").dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 6
        a, b = _twice(lambda: tree_assign(dfg, table, deadline))
        assert dict(a.assignment.items()) == dict(b.assignment.items())

    def test_expansion_stable(self):
        dfg = get_benchmark("elliptic").dag()
        e1, e2 = _twice(lambda: choose_expansion(dfg))
        assert sorted(map(str, e1.tree.nodes())) == sorted(
            map(str, e2.tree.nodes())
        )
        assert e1.duplicated_originals() == e2.duplicated_originals()

    def test_frontiers_stable(self):
        tree = get_benchmark("volterra").dag()
        table = random_table(tree, num_types=3, seed=24)
        floor = min_completion_time(tree, table)
        assert tree_frontier(tree, table, max_deadline=floor + 10) == tree_frontier(
            tree, table, max_deadline=floor + 10
        )
        dag = get_benchmark("rls_laguerre").dag()
        dtable = random_table(dag, num_types=3, seed=24)
        dfloor = min_completion_time(dag, dtable)
        assert dfg_frontier(dag, dtable, max_deadline=dfloor + 5) == dfg_frontier(
            dag, dtable, max_deadline=dfloor + 5
        )


class TestSchedulingDeterminism:
    @pytest.mark.parametrize("scheduler", ["min_resource", "force_directed"])
    def test_full_synthesis_repeats_exactly(self, scheduler):
        dfg = get_benchmark("elliptic").dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 5
        r1, r2 = _twice(
            lambda: synthesize(dfg, table, deadline, scheduler=scheduler)
        )
        assert r1.schedule.ops == r2.schedule.ops
        assert r1.configuration == r2.configuration

    def test_modulo_schedule_stable(self):
        from repro.assign import Assignment
        from repro.retiming.modulo import modulo_schedule
        from repro.sched.schedule import Configuration
        from repro.suite.extras import iir_biquad_cascade

        dfg = iir_biquad_cascade(2)
        table = random_table(dfg, num_types=2, seed=3)
        assignment = Assignment.cheapest(dfg, table)
        cfg = Configuration.of([3, 3])
        m1, m2 = _twice(lambda: modulo_schedule(dfg, table, assignment, cfg))
        assert m1.starts == m2.starts and m1.ii == m2.ii

    def test_register_allocation_stable(self):
        from repro.sched import allocate_registers

        dfg = get_benchmark("lattice8").dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 4
        result = synthesize(dfg, table, deadline)
        a1, a2 = _twice(
            lambda: allocate_registers(
                dfg, table, result.assignment, result.schedule
            )
        )
        assert a1.registers == a2.registers


class TestReportDeterminism:
    def test_experiment_rows_stable(self):
        from repro.report.experiments import run_benchmark_rows

        r1, r2 = _twice(lambda: run_benchmark_rows("diffeq", seed=24, count=3))
        assert r1 == r2

    def test_rendered_tables_stable(self):
        from repro.report.experiments import render_rows, run_benchmark_rows

        rows = run_benchmark_rows("diffeq", seed=24, count=2)
        assert render_rows(rows) == render_rows(rows)
