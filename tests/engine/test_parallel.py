"""pmap: ordering, chunking, serial/parallel equivalence, errors.

Functions mapped with ``workers > 0`` cross a process boundary, so
everything here is module-level (picklable); the worker-count
equivalence tests run real 2-worker pools and are kept tiny.
"""

from __future__ import annotations

import pytest

from repro.engine import pmap, resolve_workers
from repro.engine.parallel import shutdown_pools
from repro.errors import EngineError
from repro.obs import Tracer, use_tracer


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError("item three is cursed")  # lint: ignore[RL001]
    return x


def test_serial_matches_plain_map():
    items = list(range(17))
    assert pmap(_square, items) == [x * x for x in items]


def test_empty_and_single_item():
    assert pmap(_square, []) == []
    assert pmap(_square, [7], workers=4) == [49]  # single item stays serial


def test_order_preserved_across_workers():
    items = list(range(37))
    expected = [x * x for x in items]
    assert pmap(_square, items, workers=2) == expected
    assert pmap(_square, items, workers=2, chunk_size=1) == expected
    assert pmap(_square, items, workers=2, chunk_size=100) == expected


def test_resolve_workers():
    assert resolve_workers(0) == 0
    assert resolve_workers(3) == 3
    assert resolve_workers(-1) >= 1
    with pytest.raises(EngineError, match="workers must be >= 0"):
        resolve_workers(-2)


def test_bad_worker_and_chunk_requests():
    with pytest.raises(EngineError, match="workers must be >= 0"):
        pmap(_square, [1, 2], workers=-5)
    with pytest.raises(EngineError, match="chunk_size must be >= 0"):
        pmap(_square, [1, 2], chunk_size=-1)


def test_exception_propagates_serial_and_parallel():
    with pytest.raises(ValueError, match="cursed"):
        pmap(_boom, list(range(6)), workers=0)
    with pytest.raises(ValueError, match="cursed"):
        pmap(_boom, list(range(6)), workers=2, chunk_size=1)
    # the pool survives a worker-side exception and stays usable
    assert pmap(_square, [1, 2, 3], workers=2, chunk_size=1) == [1, 4, 9]


def test_pmap_emits_span_and_metrics():
    tracer = Tracer()
    with use_tracer(tracer):
        pmap(_square, list(range(8)), workers=0, label="engine.test_label")
    spans = [s for root in tracer.roots for s in root.walk()]
    assert any(s.name == "engine.test_label" for s in spans)
    counters = tracer.metrics.counters
    assert counters["engine.pmap.items"].value == 8.0


def test_shutdown_pools_idempotent():
    pmap(_square, list(range(4)), workers=2)
    shutdown_pools()
    shutdown_pools()
    # pools are recreated transparently after shutdown
    assert pmap(_square, [5], workers=2) == [25]
