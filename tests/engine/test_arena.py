"""TableArena: shared-memory round-trips, dedupe, degrade, lifecycle.

The arena's contract is that workers rebuild *exactly* the arrays the
parent staged — zero-copy views when shared memory engages, pickled
values when it degrades — and that the degrade path is indistinguishable
to callers.  Everything here runs in-process: ``resolve_ref`` is the
same code a pmap worker executes, minus the process boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.arena import (
    ArenaRef,
    TableArena,
    detach_all,
    payload_refs,
    resolve_arrays,
    resolve_payload,
    resolve_ref,
    shm_available,
)
from repro.errors import EngineError
from repro.obs import Tracer, use_tracer

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _arrays():
    return {
        "times": np.arange(12, dtype=np.int64).reshape(3, 4),
        "costs": np.linspace(0.0, 1.0, 6).reshape(2, 3),
        "empty": np.empty((0, 5), dtype=np.float64),
        "byte": np.array([7], dtype=np.int8),  # exercises alignment padding
    }


def test_roundtrip_values_dtypes_shapes():
    arrays = _arrays()
    arena = TableArena.create(arrays)
    assert arena is not None
    try:
        resolved = resolve_arrays(arena.refs)
        assert resolved.keys() == arrays.keys()
        for name, arr in arrays.items():
            np.testing.assert_array_equal(resolved[name], arr)
            assert resolved[name].dtype == arr.dtype
            assert resolved[name].shape == arr.shape
            assert not resolved[name].flags.writeable
    finally:
        detach_all()
        arena.close()


def test_duplicate_arrays_share_one_offset():
    shared = np.ones((64, 64))
    arena = TableArena.create({"a": shared, "b": shared, "c": np.zeros(2)})
    assert arena is not None
    try:
        refs = arena.refs
        assert refs["a"].offset == refs["b"].offset
        assert refs["c"].offset != refs["a"].offset
    finally:
        arena.close()


def test_views_are_zero_copy():
    arena = TableArena.create({"x": np.arange(8, dtype=np.int64)})
    assert arena is not None
    try:
        first = resolve_ref(arena.refs["x"])
        second = resolve_ref(arena.refs["x"])
        assert np.shares_memory(first, second)
    finally:
        detach_all()
        arena.close()


def test_resolve_after_close_raises():
    arena = TableArena.create({"x": np.arange(4)})
    assert arena is not None
    ref = arena.refs["x"]
    detach_all()  # drop any cached attachment so the lookup is fresh
    arena.close()
    with pytest.raises(EngineError, match="is gone"):
        resolve_ref(ref)


def test_close_is_idempotent():
    arena = TableArena.create({"x": np.arange(4)})
    assert arena is not None
    arena.close()
    arena.close()


def test_context_manager_closes():
    with TableArena.create({"x": np.arange(4)}) as arena:
        ref = arena.refs["x"]
        np.testing.assert_array_equal(resolve_ref(ref), np.arange(4))
    detach_all()
    with pytest.raises(EngineError, match="is gone"):
        resolve_ref(ref)


def test_degrade_on_disable_env(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
    assert not shm_available()
    assert TableArena.create({"x": np.arange(4)}) is None


def test_payload_refs_roundtrip_with_and_without_arena():
    arrays = _arrays()
    # degrade path: everything pickles by value
    refs, fallback = payload_refs(None, arrays)
    assert refs == {} and fallback.keys() == arrays.keys()
    resolved = resolve_payload(refs, fallback)
    for name, arr in arrays.items():
        np.testing.assert_array_equal(resolved[name], arr)

    arena = TableArena.create(arrays)
    assert arena is not None
    try:
        refs, fallback = payload_refs(arena, arrays)
        assert fallback == {} and refs.keys() == arrays.keys()
        resolved = resolve_payload(refs, fallback)
        for name, arr in arrays.items():
            np.testing.assert_array_equal(resolved[name], arr)
    finally:
        detach_all()
        arena.close()


def test_payload_refs_subsets_to_requested_names():
    # Regression: an arena pooled over *many* lanes must ship only the
    # requested subset's refs, not its whole catalogue.
    arrays = _arrays()
    arena = TableArena.create(arrays)
    assert arena is not None
    try:
        subset = {"times": arrays["times"]}
        refs, fallback = payload_refs(arena, subset)
        assert set(refs) == {"times"} and fallback == {}
    finally:
        detach_all()
        arena.close()


def test_create_emits_arena_metrics():
    tracer = Tracer()
    with use_tracer(tracer):
        arena = TableArena.create({"x": np.arange(16, dtype=np.int64)})
    assert arena is not None
    try:
        counters = tracer.metrics.counters
        assert counters["engine.arena.blocks"].value == 1.0
        assert counters["engine.arena.bytes"].value >= 16 * 8
    finally:
        arena.close()


def test_arena_ref_nbytes():
    ref = ArenaRef(shm_name="n", dtype="<f8", shape=(3, 4), offset=0)
    assert ref.nbytes == 3 * 4 * 8
    assert ArenaRef(shm_name="n", dtype="<i8", shape=(), offset=0).nbytes == 8
