"""Unit tests for the shared anytime Budget."""

import pickle

import pytest

from repro.engine import Budget
from repro.errors import EngineError


class TestConstruction:
    def test_needs_at_least_one_limit(self):
        with pytest.raises(EngineError, match="at least one limit"):
            Budget()

    def test_negative_evaluations_rejected(self):
        with pytest.raises(EngineError, match="evaluations"):
            Budget(evaluations=-1)

    def test_negative_wall_rejected(self):
        with pytest.raises(EngineError, match="wall_s"):
            Budget(wall_s=-0.5)

    def test_zero_evaluations_is_a_valid_empty_budget(self):
        b = Budget(evaluations=0)
        assert b.exhausted()
        assert b.remaining() == 0


class TestSpending:
    def test_spend_until_exhausted(self):
        b = Budget(evaluations=3)
        assert not b.exhausted()
        b.spend()
        b.spend(2)
        assert b.spent == 3
        assert b.exhausted()
        assert b.remaining() == 0

    def test_overspend_clamps_remaining(self):
        b = Budget(evaluations=2)
        b.spend(5)
        assert b.remaining() == 0
        assert b.exhausted()

    def test_negative_spend_rejected(self):
        with pytest.raises(EngineError, match="negative"):
            Budget(evaluations=1).spend(-1)

    def test_wall_only_budget_has_no_eval_remaining(self):
        b = Budget(wall_s=10.0)
        assert b.remaining() is None
        b.spend(100)
        assert not b.exhausted()  # clock never started

    def test_wall_clock_exhaustion(self):
        b = Budget(wall_s=0.0).start()
        assert b.exhausted()

    def test_elapsed_zero_before_start(self):
        assert Budget(wall_s=5.0).elapsed() == 0.0


class TestSplit:
    def test_even_split(self):
        shares = Budget(evaluations=9).split(3)
        assert [s.evaluations for s in shares] == [3, 3, 3]

    def test_remainder_goes_to_earlier_parts(self):
        shares = Budget(evaluations=10).split(4)
        assert [s.evaluations for s in shares] == [3, 3, 2, 2]
        assert sum(s.evaluations for s in shares) == 10

    def test_wall_copied_to_each_share(self):
        shares = Budget(evaluations=4, wall_s=2.5).split(2)
        assert all(s.wall_s == 2.5 for s in shares)

    def test_wall_only_split(self):
        shares = Budget(wall_s=1.0).split(3)
        assert len(shares) == 3
        assert all(s.evaluations is None and s.wall_s == 1.0 for s in shares)

    def test_more_parts_than_units(self):
        shares = Budget(evaluations=2).split(5)
        assert [s.evaluations for s in shares] == [1, 1, 0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(EngineError, match="parts"):
            Budget(evaluations=1).split(0)


class TestPickling:
    def test_roundtrip_preserves_state(self):
        b = Budget(evaluations=7, wall_s=3.0)
        b.spend(2)
        clone = pickle.loads(pickle.dumps(b))
        assert clone.evaluations == 7
        assert clone.wall_s == 3.0
        assert clone.spent == 2
        assert clone.remaining() == 5
