"""BatchedTreeDP: multi-lane bit-parity with the scalar packed engine.

The batched engine promises *per-lane bit-identity* with
:class:`~repro.engine.kernels.PackedTreeDP` — curves, tracebacks, and
``DPStats`` integer counters for the same bind/refresh sequence — while
the compute runs stacked across lanes.  These tests pin that contract
on hand-built forests where every intermediate is small enough to
reason about: single lanes, shared-forest groups, pin rounds, rebinds,
and the validation surface.  Suite-scale parity (every registered
benchmark, hypothesis instances) lives in
``tests/properties/test_prop_batch.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import DPStats
from repro.engine.batch import BatchedForest, BatchedTreeDP
from repro.engine.kernels import PackedTreeDP
from repro.engine.pack import PackedForest
from repro.errors import EngineError, InfeasibleError, TableError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG


def _tree() -> DFG:
    return DFG.from_edges(
        [("r", "a"), ("r", "b"), ("b", "c"), ("b", "d")], name="tree"
    )


def _wide() -> DFG:
    return DFG.from_edges(
        [("x", "y"), ("x", "z"), ("y", "u"), ("y", "v"), ("z", "w")],
        name="wide",
    )


def _scalar(tree: DFG, table, deadline: int) -> PackedTreeDP:
    engine = PackedTreeDP(tree, deadline, stats=DPStats())
    engine.refresh(table)
    return engine


def _assert_lane_matches(batched: BatchedTreeDP, lane: int, scalar: PackedTreeDP):
    np.testing.assert_array_equal(
        batched.total_curve(lane), scalar.total_curve()
    )
    assert batched.min_feasible(lane) == scalar.min_feasible()
    deadline = batched.deadline(lane)
    for budget in range(scalar.min_feasible(), deadline + 1):
        got = batched.traceback_at(lane, budget)
        want = scalar.traceback_at(budget)
        assert {
            node: int(got[i]) for i, node in enumerate(scalar.pack.nodes)
        } == want


def _counters(stats: DPStats) -> dict:
    # Integer work counters only: seconds_* fields are wall-clock.
    return {
        k: v
        for k, v in vars(stats).items()
        if isinstance(v, int) and not k.startswith("seconds")
    }


def test_single_lane_matches_scalar():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=7)
    scalar = _scalar(tree, table, 25)
    pack = PackedForest(tree)
    stats = DPStats()
    batched = BatchedTreeDP([pack], [25], stats=[stats])
    batched.bind_table(0, table, pack.rows)
    batched.refresh()
    _assert_lane_matches(batched, 0, scalar)
    assert _counters(stats) == _counters(scalar.stats)


def test_shared_forest_group_and_mixed_shapes():
    tree, wide = _tree(), _wide()
    t_tree = random_table(tree, num_types=3, seed=1)
    t_tree2 = random_table(tree, num_types=3, seed=2)
    t_wide = random_table(wide, num_types=2, seed=3)
    pack_tree, pack_wide = PackedForest(tree), PackedForest(wide)
    # lanes 0 and 1 share one forest object (one group, two slots);
    # lane 2 is a different shape with a different type count.
    batched = BatchedTreeDP([pack_tree, pack_tree, pack_wide], [20, 26, 18])
    batched.bind_table(0, t_tree, pack_tree.rows)
    batched.bind_table(1, t_tree2, pack_tree.rows)
    batched.bind_table(2, t_wide, pack_wide.rows)
    batched.refresh()
    assert len(batched.forest.group_lanes) == 2
    _assert_lane_matches(batched, 0, _scalar(tree, t_tree, 20))
    _assert_lane_matches(batched, 1, _scalar(tree, t_tree2, 26))
    _assert_lane_matches(batched, 2, _scalar(wide, t_wide, 18))


def test_pin_rounds_match_with_fixed_rebinds():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=9)
    pack = PackedForest(tree)
    stats = DPStats()
    batched = BatchedTreeDP([pack], [22], stats=[stats])
    batched.bind_table(0, table, pack.rows)
    batched.refresh()
    scalar = _scalar(tree, table, 22)
    pinned = table
    for row, fu_type in ((0, 1), (2, 0), (1, 2)):
        pinned = pinned.with_fixed(pack.rows[row], fu_type)
        scalar.refresh(pinned)
        batched.bind_pinned(0, row, fu_type)
        batched.refresh()
        _assert_lane_matches(batched, 0, scalar)
    assert _counters(stats) == _counters(scalar.stats)


def test_rebind_same_table_is_all_hits():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=4)
    pack = PackedForest(tree)
    stats = DPStats()
    batched = BatchedTreeDP([pack], [20], stats=[stats])
    batched.bind_table(0, table, pack.rows)
    batched.refresh()
    recomputed = stats.nodes_recomputed
    batched.bind_table(0, table, pack.rows)
    batched.refresh()
    # nothing dirty, nothing redone
    assert stats.nodes_recomputed == recomputed


def test_traceback_all_matches_per_budget_tracebacks():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=11)
    pack = PackedForest(tree)
    batched = BatchedTreeDP([pack, pack], [20, 24])
    batched.bind_table(0, table, pack.rows)
    batched.bind_table(1, table, pack.rows)
    batched.refresh()
    budgets = [batched.min_feasible(0), batched.min_feasible(1)]
    all_rows = batched.traceback_all(budgets)
    for lane, budget in enumerate(budgets):
        np.testing.assert_array_equal(
            all_rows[lane], batched.traceback_at(lane, budget)
        )


def test_infeasible_lane_reports_like_scalar():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=5)
    pack = PackedForest(tree)
    batched = BatchedTreeDP([pack], [0])
    batched.bind_table(0, table, pack.rows)
    batched.refresh()
    assert not np.isfinite(batched.total_curve(0)).any()
    with pytest.raises(InfeasibleError):
        raise batched.infeasible_error(0, 0)


def test_constructor_validation():
    pack = PackedForest(_tree())
    with pytest.raises(EngineError, match="2 forests but 1 deadlines"):
        BatchedTreeDP([pack, pack], [10])
    with pytest.raises(InfeasibleError, match="deadline must be >= 0"):
        BatchedTreeDP([pack], [-1])
    with pytest.raises(EngineError, match="names"):
        BatchedTreeDP([pack], [10], names=["a", "b"])
    with pytest.raises(EngineError, match="stats slots"):
        BatchedTreeDP([pack], [10], stats=[None, None])


def test_bind_validation():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=0)
    pack = PackedForest(tree)
    batched = BatchedTreeDP([pack], [15])
    with pytest.raises(TableError, match="rows"):
        batched.bind_table(0, table, pack.rows[:-1])
    with pytest.raises(TableError, match="bad bind shapes"):
        batched.bind_arrays(
            0,
            np.zeros((2, 3), dtype=np.int64),
            np.zeros((3, 3), dtype=np.float64),
            ["a", "b"],
        )
    with pytest.raises(EngineError, match="out of range"):
        batched.bind_table(7, table, pack.rows)
    with pytest.raises(EngineError, match="bind_pinned needs a materialized"):
        batched.bind_pinned(0, 0, 0)


def test_bind_rejects_negative_times_and_type_count_changes():
    tree = _tree()
    table = random_table(tree, num_types=3, seed=0)
    pack = PackedForest(tree)
    batched = BatchedTreeDP([pack], [15])
    nr = len(pack.rows)
    with pytest.raises(TableError, match="negative execution time"):
        batched.bind_arrays(
            0,
            np.full((nr, 3), -1, dtype=np.int64),
            np.zeros((nr, 3), dtype=np.float64),
            list(range(nr)),
        )
    batched.bind_table(0, table, pack.rows)
    batched.refresh()
    with pytest.raises(TableError, match="FU types"):
        batched.bind_arrays(
            0,
            np.ones((nr, 2), dtype=np.int64),
            np.zeros((nr, 2), dtype=np.float64),
            list(range(nr)),
        )


def test_batched_forest_shape_tables_mirror_csr():
    tree = _wide()
    forest = BatchedForest([PackedForest(tree)])
    shape = forest.shapes[0]
    for i in range(shape.n):
        lo, hi = int(shape.child_off[i]), int(shape.child_off[i + 1])
        assert shape.kids_tuples[i] == tuple(shape.child_idx[lo:hi].tolist())
    assert shape.row_list == shape.row_of.tolist()
