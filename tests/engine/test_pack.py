"""Structural invariants of the CSR packing layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import PackedForest, RowBinding
from repro.errors import NotATreeError, TableError
from repro.fu.random_tables import random_table
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG


def make_table(dfg, seed=0, num_types=3):
    return random_table(dfg, num_types=num_types, seed=seed)


def _forest() -> DFG:
    """Two trees: r1 → (a, b), b → c; and the isolated r2."""
    dfg = DFG.from_edges(
        [("r1", "a"), ("r1", "b"), ("b", "c")], name="forest"
    )
    dfg.add_node("r2", op="add")
    return dfg


def test_reverse_topo_children_before_parents():
    pack = PackedForest(_forest())
    for i, kids in enumerate(pack.children_tuples):
        for c in kids:
            assert c < i, "child index must precede its parent's"


def test_parent_and_csr_agree():
    pack = PackedForest(_forest())
    for i, kids in enumerate(pack.children_tuples):
        lo, hi = pack.child_off[i], pack.child_off[i + 1]
        assert tuple(pack.child_idx[lo:hi]) == kids
        assert pack.child_counts[i] == len(kids)
        for c in kids:
            assert pack.parent[c] == i
    roots = set(pack.roots.tolist())
    assert roots == {i for i in range(pack.n) if pack.parent[i] == -1}


def test_levels_partition_and_align():
    pack = PackedForest(_forest())
    seen = np.concatenate(pack.levels)
    assert sorted(seen.tolist()) == list(range(pack.n))
    for k, kids in enumerate(pack.level_children):
        if kids.size:
            np.testing.assert_array_equal(kids, pack.levels[k + 1])
        else:
            assert k == len(pack.levels) - 1


def test_node_key_dedups_rows():
    dfg = DFG.from_edges([("r", "x1"), ("r", "x2")], name="copies")
    origin = {"r": "r", "x1": "x", "x2": "x"}
    pack = PackedForest(dfg, node_key=origin.__getitem__)
    assert sorted(pack.rows) == ["r", "x"]
    assert pack.row_of[pack.index["x1"]] == pack.row_of[pack.index["x2"]]


def test_multi_parent_rejected():
    dag = DFG.from_edges([("a", "c"), ("b", "c")], name="vee")
    with pytest.raises(NotATreeError, match="several parents"):
        PackedForest(dag)


def test_empty_forest():
    pack = PackedForest(DFG(name="empty"))
    assert pack.n == 0 and pack.roots.size == 0 and pack.levels == []


def test_binding_reports_changed_rows():
    tree = _forest()
    table = make_table(tree, seed=3)
    binding = RowBinding(PackedForest(tree))
    first = binding.bind(table)
    assert sorted(first.tolist()) == list(range(len(binding._pack.rows)))
    assert binding.bind(table).size == 0  # identical rebind: nothing changed
    pinned = table.with_fixed("c", 0)
    changed = binding.bind(pinned)
    assert [binding._pack.rows[r] for r in changed.tolist()] == ["c"]
    # ... and returning to the base table flags the same single row.
    back = binding.bind(table)
    assert [binding._pack.rows[r] for r in back.tolist()] == ["c"]


def test_binding_rejects_num_types_mismatch():
    tree = _forest()
    binding = RowBinding(PackedForest(tree))
    binding.bind(make_table(tree, seed=3, num_types=3))
    other = TimeCostTable(2)
    for n in tree.nodes():
        other.set_row(n, [1, 2], [2.0, 1.0])
    with pytest.raises(TableError, match="FU types"):
        binding.bind(other)


def test_binding_reset_forgets_everything():
    tree = _forest()
    table = make_table(tree, seed=3)
    binding = RowBinding(PackedForest(tree))
    binding.bind(table)
    binding.reset()
    assert binding.times is None
    assert binding.bind(table).size == len(binding._pack.rows)
