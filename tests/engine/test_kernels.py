"""PackedTreeDP vs the python reference engine, plus window_bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assign.incremental import (
    IncrementalTreeDP,
    PackedAssignDP,
    make_tree_engine,
)
from repro.engine import DPStats, window_bounds
from repro.errors import AssignError, InfeasibleError, NotATreeError, TableError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG


def make_table(dfg, seed=0, num_types=3):
    return random_table(dfg, num_types=num_types, seed=seed)


def _tree() -> DFG:
    return DFG.from_edges(
        [("r", "a"), ("r", "b"), ("b", "c"), ("b", "d")], name="tree"
    )


def _both(tree, deadline, **kw):
    return (
        PackedAssignDP(tree, deadline, **kw),
        IncrementalTreeDP(tree, deadline, **kw),
    )


# ----------------------------------------------------------------------
# window_bounds
# ----------------------------------------------------------------------
def _reference_bounds(occ_asap, occ_alap):
    m, horizon = occ_asap.shape
    bounds = []
    windows = np.arange(1, horizon + 1, dtype=np.float64)
    for j in range(m):
        if horizon == 0 or not occ_asap[j].any() and not occ_alap[j].any():
            bounds.append(0)
            continue
        lb_alap = np.max(np.ceil(np.cumsum(occ_alap[j]) / windows))
        lb_asap = np.max(np.ceil(np.cumsum(occ_asap[j][::-1]) / windows))
        bounds.append(int(max(lb_alap, lb_asap)))
    return bounds


def test_window_bounds_matches_reference_loop():
    rng = np.random.default_rng(11)
    for _ in range(50):
        m = int(rng.integers(1, 5))
        horizon = int(rng.integers(1, 12))
        occ_asap = rng.integers(0, 4, size=(m, horizon))
        occ_alap = rng.integers(0, 4, size=(m, horizon))
        got = window_bounds(occ_asap, occ_alap)
        assert got.tolist() == _reference_bounds(occ_asap, occ_alap)


def test_window_bounds_zero_horizon_and_shape_check():
    assert window_bounds(
        np.zeros((3, 0), dtype=np.int64), np.zeros((3, 0), dtype=np.int64)
    ).tolist() == [0, 0, 0]
    with pytest.raises(TableError, match="occupancy shapes"):
        window_bounds(np.zeros((2, 3)), np.zeros((2, 4)))


# ----------------------------------------------------------------------
# PackedTreeDP vs IncrementalTreeDP
# ----------------------------------------------------------------------
def test_engines_bitwise_identical_on_tree():
    tree = _tree()
    table = make_table(tree, seed=5)
    packed, python = _both(tree, 25)
    packed.refresh(table)
    python.refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), python.total_curve())
    floor = packed.min_feasible()
    assert floor == python.min_feasible()
    for j in range(floor, 26):
        assert packed.traceback_at(j) == python.traceback_at(j)
    for n in tree.nodes():
        np.testing.assert_array_equal(packed.curve(n), python.curve(n))


def test_engines_identical_across_pin_rounds():
    tree = _tree()
    table = make_table(tree, seed=5)
    packed, python = _both(tree, 25, stats=DPStats())
    python.stats = DPStats()
    for t in (table, table.with_fixed("b", 1), table.with_fixed("c", 0), table):
        packed.refresh(t)
        python.refresh(t)
        np.testing.assert_array_equal(
            packed.total_curve(), python.total_curve()
        )
        assert packed.traceback_at(25) == python.traceback_at(25)
    # identical counters: clean nodes count as hits in both engines
    assert packed.stats.nodes_visited == python.stats.nodes_visited
    assert packed.stats.nodes_recomputed == python.stats.nodes_recomputed
    assert packed.stats.cache_hits == python.stats.cache_hits
    assert packed.cache_entries() == python.cache_entries()


def test_empty_forest():
    from repro.fu.table import TimeCostTable

    empty = DFG(name="empty")
    table = TimeCostTable(3)
    packed, python = _both(empty, 4)
    packed.refresh(table)
    python.refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), python.total_curve())
    assert packed.total_curve().tolist() == [0.0] * 5
    assert packed.traceback_at(0) == {} == python.traceback_at(0)


def test_single_node():
    one = DFG(name="one")
    one.add_node("x", op="add")
    table = make_table(one, seed=2)
    packed, python = _both(one, 8)
    packed.refresh(table)
    python.refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), python.total_curve())
    assert packed.traceback_at(8) == python.traceback_at(8)


def test_infeasible_deadline_same_error():
    tree = _tree()
    table = make_table(tree, seed=5)
    packed, python = _both(tree, 1)
    with pytest.raises(InfeasibleError) as from_packed:
        packed.refresh(table).traceback_at(1)
    with pytest.raises(InfeasibleError) as from_python:
        python.refresh(table).traceback_at(1)
    assert str(from_packed.value) == str(from_python.value)
    assert from_packed.value.min_feasible == from_python.value.min_feasible


def test_budget_out_of_range_same_error():
    tree = _tree()
    table = make_table(tree, seed=5)
    packed, python = _both(tree, 10)
    with pytest.raises(InfeasibleError) as from_packed:
        packed.refresh(table).traceback_at(11)
    with pytest.raises(InfeasibleError) as from_python:
        python.refresh(table).traceback_at(11)
    assert str(from_packed.value) == str(from_python.value)


def test_query_before_refresh_raises():
    packed = PackedAssignDP(_tree(), 10)
    with pytest.raises(InfeasibleError, match="refresh"):
        packed.total_curve()


def test_rejects_non_forest_and_negative_deadline():
    dag = DFG.from_edges([("a", "c"), ("b", "c")], name="vee")
    with pytest.raises(NotATreeError, match="out-forest"):
        PackedAssignDP(dag, 5)
    with pytest.raises(InfeasibleError, match=">= 0"):
        PackedAssignDP(_tree(), -1)


def test_clear_cache_recomputes_identically():
    tree = _tree()
    table = make_table(tree, seed=5)
    packed = PackedAssignDP(tree, 20)
    packed.refresh(table)
    before = packed.total_curve().copy()
    assert packed.cache_entries() > 0
    packed.clear_cache()
    assert packed.cache_entries() == 0
    packed.refresh(table)
    np.testing.assert_array_equal(packed.total_curve(), before)


def test_make_tree_engine_dispatch():
    tree = _tree()
    assert isinstance(make_tree_engine(tree, 5), PackedAssignDP)
    assert isinstance(
        make_tree_engine(tree, 5, kernel="python"), IncrementalTreeDP
    )
    with pytest.raises(AssignError, match="unknown kernel"):
        make_tree_engine(tree, 5, kernel="numba")


def test_result_at_matches_between_engines():
    tree = _tree()
    table = make_table(tree, seed=9)
    packed, python = _both(tree, 22)
    rp = packed.refresh(table).result_at(22)
    rq = python.refresh(table).result_at(22)
    assert dict(rp.assignment.items()) == dict(rq.assignment.items())
    assert rp.cost == rq.cost
    assert rp.completion_time == rq.completion_time
    assert rp.algorithm == rq.algorithm
