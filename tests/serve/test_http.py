"""The stdlib HTTP/JSON front: endpoints, errors, cache behaviour.

Each test drives a real socket server bound to an ephemeral port,
serving from a background thread via ``handle_request`` — the same
single-threaded coordinator the long-running CLI mode uses.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.io import instance_to_dict
from repro.serve import SynthesisService, make_server

from ..conftest import make_table


@pytest.fixture
def server():
    srv = make_server("127.0.0.1", 0, SynthesisService())
    try:
        yield srv
    finally:
        srv.server_close()


def _call(server, method, path, doc=None):
    """One HTTP round-trip against ``server`` (handled in a thread)."""
    host, port = server.server_address[:2]
    worker = threading.Thread(target=server.handle_request)
    worker.start()
    body = None if doc is None else json.dumps(doc).encode("utf-8")
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            status, payload = reply.status, json.load(reply)
    except urllib.error.HTTPError as exc:
        status, payload = exc.code, json.load(exc)
    worker.join(timeout=30)
    return status, payload


def _batch_doc(dfg, table, deadline):
    return {
        "requests": [
            {"instance": instance_to_dict(dfg, table), "deadline": deadline}
        ]
    }


class TestEndpoints:
    def test_health(self, server):
        status, doc = _call(server, "GET", "/v1/health")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["schema_version"] == 1
        assert doc["cache_entries"] == 0

    def test_batch_then_metrics_and_cache(self, server, chain3, chain3_table):
        payload = _batch_doc(chain3, chain3_table, 12)

        status, cold = _call(server, "POST", "/v1/batch", payload)
        assert status == 200
        assert cold["batch"] == {"requests": 1, "cached": 0, "failed": 0}
        (response,) = cold["responses"]
        assert response["result"]["schema_version"] == 1
        assert set(response["result"]["assignment"]) == {"a", "b", "c"}

        status, warm = _call(server, "POST", "/v1/batch", payload)
        assert status == 200
        assert warm["batch"]["cached"] == 1
        assert warm["responses"][0]["result"] == response["result"]

        status, metrics = _call(server, "GET", "/v1/metrics")
        assert status == 200
        assert metrics["counters"]["serve.solves"] == 1.0
        assert metrics["counters"]["serve.cache.hits"] >= 1.0

        status, health = _call(server, "GET", "/v1/health")
        assert health["cache_entries"] == 1

    def test_benchmark_form(self, server):
        status, doc = _call(
            server,
            "POST",
            "/v1/batch",
            {"requests": [{"benchmark": "diffeq", "deadline": 12}]},
        )
        assert status == 200
        assert doc["responses"][0]["error"] is None


class TestErrors:
    def test_unknown_path_404(self, server):
        status, doc = _call(server, "GET", "/v1/nope")
        assert status == 404 and "unknown path" in doc["error"]

    def test_invalid_json_400(self, server):
        host, port = server.server_address[:2]
        worker = threading.Thread(target=server.handle_request)
        worker.start()
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/batch", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        worker.join(timeout=30)
        assert excinfo.value.code == 400

    def test_malformed_batch_400(self, server):
        status, doc = _call(server, "POST", "/v1/batch", {"requests": []})
        assert status == 400 and "no requests" in doc["error"]

    def test_infeasible_request_is_not_an_http_error(
        self, server, chain3, chain3_table
    ):
        status, doc = _call(
            server, "POST", "/v1/batch", _batch_doc(chain3, chain3_table, 1)
        )
        assert status == 200
        assert doc["batch"]["failed"] == 1
        assert doc["responses"][0]["error"]["type"] == "InfeasibleError"


class TestWideDag:
    def test_labels_translate_through_http(self, server, wide_dag):
        table = make_table(wide_dag, seed=2)
        status, doc = _call(
            server, "POST", "/v1/batch", _batch_doc(wide_dag, table, 16)
        )
        assert status == 200
        (response,) = doc["responses"]
        assert set(response["result"]["schedule"]) == {
            str(n) for n in wide_dag.nodes()
        }
