"""The batched solve path: payload parity, fallbacks, pool lifecycle.

``solve_canonical_batch`` exists so a deadline sweep hits the batched
DP engine once instead of running a solve per job — but its *contract*
is that nobody can tell: every payload's ``result``/``error`` parts are
byte-identical to ``solve_canonical_job`` on the same job, and the
``dp.*`` work counters match integer for integer (only the wall-clock
``dp.seconds_*`` metrics may differ).  These tests pin that, the
fallback lanes (trees, explicit algorithms, infeasible and malformed
jobs), the service-level ``batch=`` knob, and the ``close()`` pool
shutdown regression.
"""

from __future__ import annotations

import json

from repro.engine.parallel import _POOLS, shutdown_pools
from repro.fu.random_tables import random_table
from repro.report.experiments import DEFAULT_SEED
from repro.serve import (
    Request,
    SynthesisService,
    prepare,
    solve_canonical_batch,
    solve_canonical_job,
)
from repro.suite.registry import get_benchmark


def _instance(name: str):
    from repro.assign import min_completion_time

    dfg = get_benchmark(name).dag()
    table = random_table(dfg, num_types=3, seed=DEFAULT_SEED)
    return dfg, table, min_completion_time(dfg, table)


def _job_jsons(requests):
    return [
        prepare(request, default_evaluations=400).job_json
        for request in requests
    ]


def _assert_payload_parity(batched_texts, job_jsons):
    per_job_texts = [solve_canonical_job(text) for text in job_jsons]
    for batched_text, per_job_text in zip(batched_texts, per_job_texts):
        batched = json.loads(batched_text)
        per_job = json.loads(per_job_text)
        assert batched.get("result") == per_job.get("result")
        assert batched.get("error") == per_job.get("error")
        b_counters = batched["counters"]
        p_counters = per_job["counters"]
        assert b_counters.keys() == p_counters.keys()
        for name in p_counters:
            if name.startswith("dp.seconds"):
                continue  # wall-clock, legitimately differs
            assert b_counters[name] == p_counters[name], name


def test_sweep_batch_payloads_match_per_job():
    dfg, table, floor = _instance("elliptic")
    jobs = _job_jsons(
        Request(dfg, table, deadline=floor + i) for i in range(4)
    )
    _assert_payload_parity(solve_canonical_batch(jobs), jobs)


def test_mixed_batch_falls_back_per_lane():
    elliptic, e_table, e_floor = _instance("elliptic")  # batchable repeat
    tree, t_table, t_floor = _instance("fir8")  # tree: scalar fallback
    jobs = _job_jsons(
        [
            Request(elliptic, e_table, deadline=e_floor + 2),
            Request(tree, t_table, deadline=t_floor + 2),
            Request(elliptic, e_table, deadline=e_floor - 1),  # infeasible
            Request(  # explicit algorithm: scalar fallback
                elliptic, e_table, deadline=e_floor + 2, algorithm="once"
            ),
            Request(elliptic, e_table, deadline=e_floor + 4),
        ]
    )
    batched = solve_canonical_batch(jobs)
    _assert_payload_parity(batched, jobs)
    infeasible = json.loads(batched[2])
    assert infeasible["error"]["type"] == "InfeasibleError"
    assert json.loads(batched[3])["result"]["algorithm"] != json.loads(
        batched[0]
    )["result"]["algorithm"]


def test_batch_is_empty_safe_and_order_preserving():
    assert solve_canonical_batch([]) == []
    dfg, table, floor = _instance("diffeq")
    jobs = _job_jsons(
        Request(dfg, table, deadline=floor + i) for i in (3, 0, 1)
    )
    batched = solve_canonical_batch(jobs)
    per_job = [solve_canonical_job(text) for text in jobs]
    costs = [json.loads(t)["result"]["cost"] for t in batched]
    want = [json.loads(t)["result"]["cost"] for t in per_job]
    assert costs == want


def test_service_batch_knob_is_response_invisible():
    dfg, table, floor = _instance("elliptic")
    requests = [
        Request(dfg, table, deadline=floor + i) for i in range(3)
    ] + [Request(dfg, table, deadline=floor - 1)]
    with SynthesisService(batch=True) as batched_service:
        batched = batched_service.solve_batch(requests)
        metrics = batched_service.metrics()
    with SynthesisService(batch=False) as per_job_service:
        per_job = per_job_service.solve_batch(requests)
    assert [(r.key, r.result, r.error) for r in batched] == [
        (r.key, r.result, r.error) for r in per_job
    ]
    # the three feasible sweep lanes went through the batched DP
    assert metrics["serve.batched"] >= 3.0


def _sweep_requests(count: int = 4):
    # Several batchable lanes over a general DAG: a 1-item solve (or a
    # tree-shaped fallback) runs serially and spawns no pool.
    dfg, table, floor = _instance("elliptic")
    return [Request(dfg, table, deadline=floor + i) for i in range(count)]


def test_service_close_shuts_down_worker_pools():
    shutdown_pools()  # start clean: other tests may have left pools
    service = SynthesisService(workers=2)
    service.solve_batch(_sweep_requests())
    assert _POOLS, "workers=2 solve should have spawned a pool"
    service.close()
    assert not _POOLS, "close() must shut down engine worker pools"
    service.close()  # idempotent


def test_service_context_manager_closes_pools():
    shutdown_pools()
    with SynthesisService(workers=2) as service:
        service.solve_batch(_sweep_requests())
        assert _POOLS
    assert not _POOLS
