"""Request-document parsing: forms, defaults, and validation errors."""

from __future__ import annotations

import json

import pytest

from repro.assign import min_completion_time
from repro.errors import ServeError
from repro.io import instance_to_dict
from repro.serve import request_from_dict, requests_from_doc, requests_from_file

from ..conftest import make_table


class TestBenchmarkForm:
    def test_defaults(self):
        request = request_from_dict({"benchmark": "diffeq", "deadline": 12})
        assert len(request.dfg) > 0
        assert request.deadline == 12
        assert request.scheduler == "min_resource"
        assert request.strategy == "paper"

    def test_deadline_defaults_to_floor_slack(self):
        request = request_from_dict({"benchmark": "diffeq"})
        floor = min_completion_time(request.dfg, request.table)
        assert request.deadline == int(1.3 * floor) + 1

    def test_seed_and_num_types_respected(self):
        a = request_from_dict({"benchmark": "diffeq", "seed": 1})
        b = request_from_dict({"benchmark": "diffeq", "seed": 2})
        node = next(iter(a.dfg.nodes()))
        assert list(a.table.times(node)) != list(b.table.times(node)) or list(
            a.table.costs(node)
        ) != list(b.table.costs(node))
        c = request_from_dict({"benchmark": "diffeq", "num_types": 4})
        assert c.table.num_types == 4

    def test_unknown_benchmark(self):
        with pytest.raises(ServeError, match="nope"):
            request_from_dict({"benchmark": "nope"})


class TestInlineForm:
    def test_inline_instance(self, chain3, chain3_table):
        request = request_from_dict(
            {"instance": instance_to_dict(chain3, chain3_table), "deadline": 12}
        )
        assert request.deadline == 12
        assert set(map(str, request.dfg.nodes())) == {"a", "b", "c"}

    def test_instance_deadline_used_when_not_overridden(
        self, chain3, chain3_table
    ):
        doc = {"instance": instance_to_dict(chain3, chain3_table, 14)}
        assert request_from_dict(doc).deadline == 14
        doc["deadline"] = 15
        assert request_from_dict(doc).deadline == 15

    def test_inline_requires_rows(self, chain3):
        with pytest.raises(ServeError, match="no table rows"):
            request_from_dict(
                {"instance": instance_to_dict(chain3), "deadline": 12}
            )

    def test_inline_rejects_table_seed_knobs(self, chain3, chain3_table):
        with pytest.raises(ServeError, match="benchmark form only"):
            request_from_dict(
                {
                    "instance": instance_to_dict(chain3, chain3_table),
                    "deadline": 12,
                    "seed": 7,
                }
            )


class TestValidation:
    def test_exactly_one_instance_source(self, chain3, chain3_table):
        with pytest.raises(ServeError, match="exactly one"):
            request_from_dict({"deadline": 12})
        with pytest.raises(ServeError, match="exactly one"):
            request_from_dict(
                {
                    "benchmark": "diffeq",
                    "instance": instance_to_dict(chain3, chain3_table),
                }
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServeError, match="unknown request field"):
            request_from_dict({"benchmark": "diffeq", "dead_line": 12})

    def test_non_object_rejected(self):
        with pytest.raises(ServeError, match="must be an object"):
            request_from_dict(["benchmark"])


class TestBatchDocuments:
    def test_wrapped_and_bare_lists(self):
        entry = {"benchmark": "diffeq", "deadline": 12}
        assert len(requests_from_doc({"requests": [entry, entry]})) == 2
        assert len(requests_from_doc([entry])) == 1

    def test_empty_batch_rejected(self):
        with pytest.raises(ServeError, match="no requests"):
            requests_from_doc({"requests": []})
        with pytest.raises(ServeError, match="no 'requests'"):
            requests_from_doc({"jobs": []})

    def test_file_loading(self, tmp_path):
        good = tmp_path / "batch.json"
        good.write_text(json.dumps([{"benchmark": "diffeq", "deadline": 12}]))
        assert len(requests_from_file(str(good))) == 1

        with pytest.raises(ServeError, match="cannot read"):
            requests_from_file(str(tmp_path / "missing.json"))

        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ServeError, match="not valid JSON"):
            requests_from_file(str(bad))


class TestKnobsPassThrough:
    def test_budget_and_labels(self, chain3, chain3_table):
        request = request_from_dict(
            {
                "instance": instance_to_dict(chain3, chain3_table),
                "deadline": 12,
                "strategy": "portfolio",
                "budget_evaluations": 250,
                "label": "probe",
            }
        )
        assert request.strategy == "portfolio"
        assert request.budget_evaluations == 250
        assert request.label == "probe"
