"""SynthesisService: dedupe, cache identity, determinism, telemetry.

The acceptance gates of the serving layer live here:

* resubmitting an identical batch is served **entirely** from cache —
  zero solver invocations, verified through the ``serve.solves`` and
  ``dp.*`` counters, not timing;
* relabeled (isomorphic) instances share one cache entry, with
  responses translated back to each caller's node labels;
* responses are byte-identical at any worker count.
"""

from __future__ import annotations

import pytest

from repro.checkkit.metamorphic import relabel_instance
from repro.serve import (
    Client,
    Request,
    ResultCache,
    SynthesisService,
    prepare,
    submit_batch,
)
from repro.serve.service import DEFAULT_BUDGET_EVALUATIONS

from ..conftest import make_table


@pytest.fixture
def chain_request(chain3, chain3_table):
    return Request(chain3, chain3_table, deadline=12)


def _dp_counters(service):
    return {
        k: v for k, v in service.metrics().items() if k.startswith("dp.")
    }


class TestCacheIdentity:
    def test_duplicate_requests_collapse_to_one_solve(self, chain_request):
        service = SynthesisService()
        responses = service.solve_batch([chain_request] * 3)
        assert service.metrics()["serve.solves"] == 1.0
        assert [r.key for r in responses] == [responses[0].key] * 3
        assert [r.result for r in responses] == [responses[0].result] * 3

    def test_warm_batch_does_zero_solver_work(self, wide_dag):
        request = Request(wide_dag, make_table(wide_dag, seed=2), 16)
        service = SynthesisService()
        cold = service.solve_batch([request])
        solves = service.metrics()["serve.solves"]
        dp_before = _dp_counters(service)
        assert dp_before, "wide_dag must exercise the DP counters"
        warm = service.solve_batch([request])
        assert warm[0].cached and not cold[0].cached
        assert service.metrics()["serve.solves"] == solves
        assert _dp_counters(service) == dp_before
        assert warm[0].result == cold[0].result

    def test_relabeled_twin_shares_entry_with_translated_labels(
        self, chain3, chain3_table
    ):
        twin_dfg, twin_table, mapping = relabel_instance(
            chain3, chain3_table, seed=11
        )
        service = SynthesisService()
        (orig,) = service.solve_batch([Request(chain3, chain3_table, 12)])
        (twin,) = service.solve_batch([Request(twin_dfg, twin_table, 12)])
        assert twin.cached, "isomorphic twin must hit the original's entry"
        assert twin.key == orig.key
        assert twin.result["cost"] == orig.result["cost"]
        # same decisions, each under its caller's own labels
        for old, new in mapping.items():
            assert (
                twin.result["assignment"][str(new)]
                == orig.result["assignment"][str(old)]
            )
        assert set(twin.result["schedule"]) == {
            str(n) for n in twin_dfg.nodes()
        }

    def test_perturbed_table_misses(self, chain3, chain3_table):
        perturbed = chain3_table.with_row(
            "b",
            [t + 1 for t in chain3_table.times("b")],
            list(chain3_table.costs("b")),
        )
        service = SynthesisService()
        service.solve_batch([Request(chain3, chain3_table, 12)])
        (second,) = service.solve_batch([Request(chain3, perturbed, 12)])
        assert not second.cached
        assert service.metrics()["serve.solves"] == 2.0

    def test_default_budget_and_explicit_default_share_entry(
        self, chain3, chain3_table
    ):
        implicit = prepare(
            Request(chain3, chain3_table, 12),
            default_evaluations=DEFAULT_BUDGET_EVALUATIONS,
        )
        explicit = prepare(
            Request(
                chain3,
                chain3_table,
                12,
                budget_evaluations=DEFAULT_BUDGET_EVALUATIONS,
            ),
            default_evaluations=DEFAULT_BUDGET_EVALUATIONS,
        )
        assert implicit.key == explicit.key

    def test_different_knobs_get_different_entries(self, chain3, chain3_table):
        base = Request(chain3, chain3_table, 12)
        other = Request(chain3, chain3_table, 12, scheduler="force_directed")
        service = SynthesisService()
        responses = service.solve_batch([base, other])
        assert responses[0].key != responses[1].key
        assert service.metrics()["serve.solves"] == 2.0


class TestDeterminism:
    def test_workers_do_not_change_responses(self, diamond, wide_dag):
        reqs = [
            Request(diamond, make_table(diamond, seed=1), 14),
            Request(wide_dag, make_table(wide_dag, seed=2), 16),
            Request(
                diamond,
                make_table(diamond, seed=1),
                14,
                strategy="portfolio",
                budget_evaluations=300,
            ),
        ]
        serial = SynthesisService(workers=0).solve_batch(reqs)
        sharded = SynthesisService(workers=2).solve_batch(reqs)
        assert [r.result for r in serial] == [r.result for r in sharded]
        assert [r.key for r in serial] == [r.key for r in sharded]

    def test_cached_and_fresh_payloads_identical(self, chain_request):
        cold_service = SynthesisService()
        (cold,) = cold_service.solve_batch([chain_request])
        (warm,) = cold_service.solve_batch([chain_request])
        assert cold.result == warm.result


class TestErrorCaching:
    def test_infeasible_deadline_is_a_cached_error(self, chain3, chain3_table):
        service = SynthesisService()
        bad = Request(chain3, chain3_table, deadline=1)
        (first,) = service.solve_batch([bad])
        assert not first.ok and first.result is None
        assert first.error["type"] == "InfeasibleError"
        assert "within 1" in first.error["message"]
        (second,) = service.solve_batch([bad])
        assert second.cached and second.error == first.error
        assert service.metrics()["serve.solves"] == 1.0
        assert service.metrics()["serve.errors"] == 1.0

    def test_error_does_not_poison_good_requests(self, chain3, chain3_table):
        service = SynthesisService()
        responses = service.solve_batch(
            [
                Request(chain3, chain3_table, deadline=1),
                Request(chain3, chain3_table, deadline=12),
            ]
        )
        assert not responses[0].ok
        assert responses[1].ok
        assert responses[1].result["schema_version"] == 1


class TestDiskCache:
    def test_persists_across_service_instances(self, tmp_path, chain_request):
        cache_dir = str(tmp_path / "cache")
        first = SynthesisService(cache=ResultCache(path=cache_dir))
        (cold,) = first.solve_batch([chain_request])
        assert not cold.cached

        second = SynthesisService(cache=ResultCache(path=cache_dir))
        (warm,) = second.solve_batch([chain_request])
        assert warm.cached
        assert warm.result == cold.result
        assert second.metrics().get("serve.solves", 0.0) == 0.0

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, chain_request):
        cache_dir = tmp_path / "cache"
        service = SynthesisService(cache=ResultCache(path=str(cache_dir)))
        (cold,) = service.solve_batch([chain_request])
        (entry,) = cache_dir.glob("*.json")
        entry.write_text("{corrupt")
        fresh = SynthesisService(cache=ResultCache(path=str(cache_dir)))
        (resp,) = fresh.solve_batch([chain_request])
        assert not resp.cached
        assert resp.result == cold.result


class TestClientFutures:
    def test_submit_batch_resolves_futures(self, chain_request):
        client = Client()
        futures = client.submit_batch([chain_request, chain_request])
        assert all(f.done() for f in futures)
        first, second = (f.result() for f in futures)
        assert first.result == second.result

    def test_flush_empties_queue(self, chain_request):
        client = Client()
        client.submit(chain_request)
        assert len(client) == 1
        responses = client.flush()
        assert len(client) == 0 and len(responses) == 1
        assert client.flush() == []

    def test_service_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            Client(SynthesisService(), workers=2)

    def test_module_level_submit_batch(self, chain_request):
        futures = submit_batch([chain_request])
        assert futures[0].result().ok


class TestTelemetry:
    def test_serve_counters_present(self, chain_request):
        service = SynthesisService()
        service.solve_batch([chain_request, chain_request])
        metrics = service.metrics()
        assert metrics["serve.requests"] == 2.0
        assert metrics["serve.solves"] == 1.0
        assert metrics["serve.cache.misses"] == 1.0
        assert metrics["serve.cache.stores"] == 1.0
        service.solve_batch([chain_request])
        assert service.metrics()["serve.cache.hits"] >= 1.0

    def test_worker_dp_counters_merged(self, wide_dag):
        service = SynthesisService()
        service.solve_batch([Request(wide_dag, make_table(wide_dag, seed=2), 16)])
        assert any(k.startswith("dp.") for k in service.metrics())
