"""Instrumentation wiring: spans from the solver layers, DPStats parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.assignment import min_completion_time
from repro.assign.frontier import dfg_frontier, tree_frontier
from repro.assign.incremental import DPStats
from repro.fu.random_tables import random_table
from repro.obs import Tracer, use_tracer
from repro.suite.registry import get_benchmark
from repro.synthesis import synthesize

from ..properties.strategies import dag_with_table


@pytest.fixture
def diffeq():
    dfg = get_benchmark("diffeq").dag()
    table = random_table(dfg, num_types=3, seed=7)
    deadline = min_completion_time(dfg, table) + 3
    return dfg, table, deadline


class TestSynthesizeSpans:
    def test_phase_spans_nest_under_synthesize(self, diffeq):
        dfg, table, deadline = diffeq
        tracer = Tracer()
        with use_tracer(tracer):
            result = synthesize(dfg, table, deadline)
        assert [r.name for r in tracer.roots] == ["synthesize"]
        root = tracer.roots[0]
        phases = [c.name for c in root.children]
        assert phases == ["assign", "lower_bound", "schedule"]
        assert root.attributes["deadline"] == deadline
        assert root.attributes["cost"] == pytest.approx(result.cost)
        # the solver's own span nests below the assign phase
        assert root.find("tree_assign") or root.find("dfg_assign_repeat")
        assert root.find("min_resource_schedule") is not None
        assert root.find("lower_bound_configuration") is not None

    def test_result_carries_trace_and_metrics(self, diffeq):
        dfg, table, deadline = diffeq
        tracer = Tracer()
        with use_tracer(tracer):
            result = synthesize(dfg, table, deadline)
        assert result.trace is tracer.roots[0]
        assert result.metrics is tracer.metrics
        for phase in ("assign", "lower_bound", "schedule", "total"):
            assert result.timings[phase] >= 0.0
        assert result.timings["total"] >= result.timings["assign"]

    def test_disabled_tracer_yields_no_trace_but_timings(self, diffeq):
        dfg, table, deadline = diffeq
        result = synthesize(dfg, table, deadline)
        assert result.trace is None
        assert result.metrics is None
        assert set(result.timings) == {"assign", "lower_bound", "schedule", "total"}

    def test_traced_and_untraced_agree(self, diffeq):
        dfg, table, deadline = diffeq
        plain = synthesize(dfg, table, deadline)
        with use_tracer(Tracer()):
            traced = synthesize(dfg, table, deadline)
        assert traced.cost == pytest.approx(plain.cost)
        assert dict(traced.assignment.items()) == dict(plain.assignment.items())
        assert traced.configuration.counts == plain.configuration.counts


class TestFrontierSpans:
    def test_tree_frontier_emits_span(self):
        dfg = get_benchmark("lattice4").dag()
        table = random_table(dfg, num_types=3, seed=0)
        floor = min_completion_time(dfg, table)
        tracer = Tracer()
        with use_tracer(tracer):
            tree_frontier(dfg, table, max_deadline=floor + 10)
        assert tracer.roots[0].name == "tree_frontier"
        assert tracer.roots[0].attributes["max_deadline"] == floor + 10

    def test_dfg_frontier_emits_dp_metrics(self, diffeq):
        dfg, table, _ = diffeq
        floor = min_completion_time(dfg, table)
        tracer = Tracer()
        with use_tracer(tracer):
            dfg_frontier(dfg, table, max_deadline=floor + 5)
        assert tracer.roots[0].name == "dfg_frontier"
        assert tracer.metrics.counter("dp.refreshes").value > 0
        assert tracer.metrics.counter("dp.tracebacks").value > 0


class TestMetricsMatchDPStats:
    @settings(max_examples=30, deadline=None)
    @given(pair=dag_with_table(max_nodes=6), span=st.integers(0, 4))
    def test_dp_counters_equal_stats(self, pair, span):
        dfg, table = pair
        floor = min_completion_time(dfg, table)
        stats = DPStats()
        tracer = Tracer()
        with use_tracer(tracer):
            dfg_frontier(dfg, table, max_deadline=floor + span, stats=stats)
        for name, value in stats.as_dict().items():
            counter = tracer.metrics.counters.get(f"dp.{name}")
            recorded = counter.value if counter is not None else 0.0
            assert recorded == pytest.approx(value), name
