"""Exporter tests: text tree, JSON-lines round-trip, Chrome trace format."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    Tracer,
    add_metric,
    chrome_trace_events,
    chrome_trace_json,
    from_jsonl,
    render_text,
    span,
    to_jsonl,
    use_tracer,
    write_chrome_trace,
)


@pytest.fixture
def traced_forest():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("solve", nodes=4, deadline=9):
            with span("assign"):
                add_metric("dp.refreshes", 3.0)
            with span("schedule"):
                pass
        with span("verify"):
            pass
    return tracer.roots


class TestRenderText:
    def test_tree_shape_and_contents(self, traced_forest):
        text = render_text(traced_forest)
        lines = text.splitlines()
        assert lines[0].startswith("solve")
        assert "nodes=4" in lines[0] and "deadline=9" in lines[0]
        assert lines[1].startswith("  assign")
        assert "dp.refreshes=3" in lines[1]
        assert lines[2].startswith("  schedule")
        assert lines[3].startswith("verify")
        assert all("ms" in line for line in lines)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_forest(self, traced_forest):
        rebuilt = from_jsonl(to_jsonl(traced_forest))
        assert len(rebuilt) == len(traced_forest)
        for orig, copy in zip(traced_forest, rebuilt):
            for a, b in zip(orig.walk(), copy.walk()):
                assert a.name == b.name
                assert a.start == b.start
                assert a.end == b.end
                assert a.attributes == b.attributes
                assert a.counters == b.counters
                assert len(a.children) == len(b.children)

    def test_empty_forest(self):
        assert to_jsonl([]) == ""
        assert from_jsonl("") == []

    def test_bad_json_raises(self):
        with pytest.raises(ObsError, match="line 1"):
            from_jsonl("not json")

    def test_missing_fields_raises(self):
        with pytest.raises(ObsError, match="missing span fields"):
            from_jsonl(json.dumps({"id": 0, "parent": None, "name": "x"}))

    def test_unknown_parent_raises(self):
        line = json.dumps(
            {
                "id": 5,
                "parent": 99,
                "name": "orphan",
                "start": 0.0,
                "end": 1.0,
                "attributes": {},
                "counters": {},
            }
        )
        with pytest.raises(ObsError, match="unknown parent"):
            from_jsonl(line)


class TestChromeTrace:
    def test_events_cover_every_span(self, traced_forest):
        events = chrome_trace_events(traced_forest)
        spans = [s for root in traced_forest for s in root.walk()]
        assert len(events) == len(spans)
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_timestamps_relative_to_earliest(self, traced_forest):
        events = chrome_trace_events(traced_forest)
        assert min(e["ts"] for e in events) == pytest.approx(0.0)

    def test_args_merge_attributes_and_counters(self, traced_forest):
        events = {e["name"]: e for e in chrome_trace_events(traced_forest)}
        assert events["solve"]["args"]["nodes"] == 4
        assert events["assign"]["args"]["dp.refreshes"] == pytest.approx(3.0)

    def test_json_document_shape(self, traced_forest):
        doc = json.loads(chrome_trace_json(traced_forest))
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"

    def test_write_chrome_trace(self, traced_forest, tmp_path):
        out = tmp_path / "trace.json"
        path, count = write_chrome_trace(traced_forest, str(out))
        assert path == str(out)
        assert count == 4
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == 4

    def test_write_to_bad_path_raises(self, traced_forest, tmp_path):
        with pytest.raises(ObsError, match="cannot write"):
            write_chrome_trace(traced_forest, str(tmp_path / "no" / "dir.json"))
