"""Unit tests for the context-var tracer: nesting, disabled path, isolation."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    add_metric,
    annotate,
    current_tracer,
    span,
    tracing_active,
    use_tracer,
)
from repro.obs.tracer import NULL_SPAN


class TestSpanNesting:
    def test_roots_and_children(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer"):
                with span("inner_a"):
                    pass
                with span("inner_b"):
                    with span("leaf"):
                        pass
        assert [r.name for r in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_timing_is_monotone_and_nested(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer"):
                with span("inner"):
                    pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration >= 0.0

    def test_open_span_duration_is_zero(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("open") as s:
                assert s.duration == pytest.approx(0.0)
            assert s.duration >= 0.0

    def test_attributes_and_counters(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("work", nodes=5) as s:
                annotate(deadline=17)
                add_metric("touch", 2.0)
                add_metric("touch")
        assert s.attributes == {"nodes": 5, "deadline": 17}
        assert s.counters == {"touch": 3.0}
        assert tracer.metrics.counter("touch").value == pytest.approx(3.0)

    def test_counters_attach_to_innermost_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer") as outer:
                with span("inner") as inner:
                    add_metric("hits")
        assert inner.counters == {"hits": 1.0}
        assert "hits" not in outer.counters

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("no")  # lint: ignore[RL001]
        boom = tracer.roots[0]
        assert boom.attributes["error"] == "ValueError"
        assert boom.end is not None

    def test_walk_and_find(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert root.find("c").name == "c"
        assert root.find("zzz") is None


class TestDisabledPath:
    def test_default_tracer_is_disabled(self):
        assert current_tracer() is NULL_TRACER
        assert not tracing_active()

    def test_disabled_span_is_shared_noop(self):
        ctx1 = NULL_TRACER.span("a", nodes=1)  # lint: ignore[RL009]
        ctx2 = NULL_TRACER.span("b")  # lint: ignore[RL009]
        assert ctx1 is ctx2  # preallocated singleton, no allocation
        with ctx1 as s:
            assert s is NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with use_tracer(tracer):
            with span("ghost"):
                add_metric("ghost.count")  # lint: ignore[RL009] -- deliberately unregistered: disabled tracer must drop it
                annotate(ghost=True)
        assert tracer.roots == []
        assert len(tracer.metrics) == 0

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        assert current_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert current_tracer() is tracer
            assert tracing_active()
        assert current_tracer() is NULL_TRACER

    def test_module_helpers_are_noops_by_default(self):
        with span("nothing") as s:
            add_metric("nothing")
            annotate(x=1)
        assert s is NULL_SPAN


class TestIsolation:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(tag):
            try:
                with use_tracer(tracer):
                    with span(f"root-{tag}"):  # lint: ignore[RL009]
                        with span(f"leaf-{tag}"):  # lint: ignore[RL009]
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # every thread produced its own root with exactly one child
        assert sorted(r.name for r in tracer.roots) == [
            f"root-{i}" for i in range(4)
        ]
        for root in tracer.roots:
            tag = root.name.split("-")[1]
            assert [c.name for c in root.children] == [f"leaf-{tag}"]
