"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_gauge_last_write_wins(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(1.0)
        assert g.value == pytest.approx(1.0)
        assert g.updates == 2

    def test_histogram_summary(self):
        h = Histogram("latency")
        assert h.mean == pytest.approx(0.0)
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(12.0)
        assert h.minimum == pytest.approx(1.0)
        assert h.maximum == pytest.approx(7.0)
        assert h.mean == pytest.approx(4.0)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_namespaces_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(9.0)
        assert reg.counter("x").value == pytest.approx(1.0)
        assert reg.gauge("x").value == pytest.approx(9.0)

    def test_views_reflect_registrations(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(5)
        assert set(reg.counters) == {"hits"}
        assert reg.counters["hits"].value == pytest.approx(5.0)
        assert dict(reg.gauges) == {}

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(3.0)
        snap = reg.as_dict()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["mean"] == pytest.approx(3.0)
