"""Unit tests for the command-line interface."""

import argparse
import json

import pytest

from repro.cli import FORWARDED_COMMANDS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["show", "diffeq"],
            ["assign", "diffeq", "-L", "12"],
            ["synth", "diffeq"],
            ["sweep", "diffeq"],
            ["table1"],
            ["table2"],
            ["headline"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "diffeq" in out and "elliptic" in out

    def test_show(self, capsys):
        assert main(["show", "elliptic"]) == 0
        out = capsys.readouterr().out
        assert "34 nodes" in out
        assert "add" in out

    def test_show_dot(self, capsys):
        assert main(["show", "diffeq", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_show_unknown_benchmark(self, capsys):
        assert main(["show", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_assign(self, capsys):
        assert main(["assign", "diffeq", "-L", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "system cost" in out
        assert "deadline    : 12" in out

    def test_assign_default_deadline(self, capsys):
        assert main(["assign", "lattice4"]) == 0
        assert "system cost" in capsys.readouterr().out

    def test_assign_explicit_algorithm(self, capsys):
        assert main(["assign", "diffeq", "-a", "greedy"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_assign_infeasible(self, capsys):
        assert main(["assign", "diffeq", "-L", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_synth(self, capsys):
        assert main(["synth", "diffeq", "-L", "14"]) == 0
        out = capsys.readouterr().out
        assert "configuration" in out
        assert "schedule:" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "diffeq", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "diffeq" in out and "repeat%" in out

    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "DFG_Assign_Once" in out and "%" in out

    def test_pareto_tree(self, capsys):
        assert main(["pareto", "lattice4", "--horizon", "25"]) == 0
        out = capsys.readouterr().out
        assert "exact (tree DP)" in out
        assert "min cost" in out

    def test_pareto_dag(self, capsys):
        assert main(["pareto", "rls_laguerre", "--horizon", "20"]) == 0
        assert "heuristic" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "elliptic"]) == 0
        assert "34 nodes" in capsys.readouterr().out

    def test_lp(self, capsys):
        assert main(["lp", "diffeq", "-L", "10"]) == 0
        out = capsys.readouterr().out
        assert "Minimize" in out and "Binaries" in out and out.strip().endswith("End")

    @pytest.mark.parametrize("fmt,marker", [
        ("csv", "benchmark,deadline"),
        ("json", '"benchmark"'),
        ("markdown", "| benchmark |"),
    ])
    def test_export_formats(self, capsys, fmt, marker):
        assert main(["export", "diffeq", "--format", fmt, "--count", "2"]) == 0
        assert marker in capsys.readouterr().out

    def test_verify(self, capsys):
        assert main(["verify", "diffeq", "-L", "12"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "reference simulation" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "fir8", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "impulse response" in out
        assert "matches the reference simulation" in out

    def test_run_exchange_file(self, capsys, tmp_path):
        from repro.fu.random_tables import random_table
        from repro.suite.io_formats import dump
        from repro.suite.registry import get_benchmark

        dfg = get_benchmark("diffeq")
        path = str(tmp_path / "g.dfg")
        dump(path, dfg, random_table(dfg.dag(), seed=0))
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "system cost" in out

    def test_assign_deadline_below_floor_is_rejected(self, capsys):
        # 2 is achievable as -L for no benchmark; the validation layer
        # must reject it up front and name the feasible minimum.
        assert main(["assign", "diffeq", "-L", "2"]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "minimum feasible" in err
        assert "-L" in err

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out = str(tmp_path / "trace.json")
        assert main(["trace", "diffeq", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "trace" in stdout
        doc = json.loads(open(out, encoding="utf-8").read())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"synthesize", "assign", "schedule", "verify"} <= names
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_text_format(self, capsys, tmp_path):
        out = str(tmp_path / "trace.txt")
        assert main(["trace", "diffeq", "--out", out, "--format", "text"]) == 0
        text = open(out, encoding="utf-8").read()
        assert text.splitlines()[0].startswith("synthesize")

    def test_trace_jsonl_round_trips(self, capsys, tmp_path):
        from repro.obs import from_jsonl

        out = str(tmp_path / "trace.jsonl")
        assert main(["trace", "diffeq", "--out", out, "--format", "jsonl"]) == 0
        roots = from_jsonl(open(out, encoding="utf-8").read())
        assert [r.name for r in roots] == ["synthesize", "verify"]

    def test_run_file_without_rows_uses_seeded_table(self, capsys, tmp_path):
        from repro.suite.io_formats import dump
        from repro.suite.registry import get_benchmark

        path = str(tmp_path / "g.dfg")
        dump(path, get_benchmark("diffeq"))
        assert main(["run", path, "--seed", "3"]) == 0
        assert "seeded random table" in capsys.readouterr().out


class TestForwardingAudit:
    """Every REMAINDER subcommand must be dispatched before parse_args.

    argparse.REMAINDER drops/steals the forwarded tail when its first
    token is an option (python bug bpo-17050); PR 5 fixed lint/fuzz by
    pre-parse dispatch.  This audit pins the fix structurally: the set
    of REMAINDER subcommands in the parser must exactly equal the
    table-driven FORWARDED_COMMANDS, so adding a forwarding subcommand
    without registering it (or vice versa) fails here, not in the field.
    """

    @staticmethod
    def _remainder_commands():
        parser = build_parser()
        found = set()
        for action in parser._actions:
            if not isinstance(action, argparse._SubParsersAction):
                continue
            for name, sub in action.choices.items():
                if any(a.nargs == argparse.REMAINDER for a in sub._actions):
                    found.add(name)
        return found

    def test_remainder_commands_all_forwarded(self):
        assert self._remainder_commands() == set(FORWARDED_COMMANDS)

    def test_forwarded_commands_have_entry_points(self):
        from repro.cli import _forwarded_main

        for name in FORWARDED_COMMANDS:
            assert callable(_forwarded_main(name))

    def test_lint_flags_forward_even_when_first(self, capsys):
        # leading option in the forwarded tail must reach lintkit (which
        # lints its default path cleanly), not be rejected by the
        # top-level parser as an unknown flag (SystemExit 2, pre-fix)
        assert main(["lint", "--select", "RL001"]) == 0
        assert "finding" in capsys.readouterr().out

    def test_serve_and_batch_flags_forward_even_when_first(self, capsys):
        # same bpo-17050 regression, for the serving subcommands: a
        # leading --help in the tail must reach the forwarded parser
        # (exit 0 with its usage), not the top-level one (exit 2)
        for name in ("serve", "batch"):
            assert main([name, "--help"]) == 0
            assert f"repro-hls {name}" in capsys.readouterr().out


class TestBatchCommand:
    """`repro-hls batch`: one-shot cached batch solving."""

    @pytest.fixture
    def request_file(self, tmp_path):
        import json

        path = tmp_path / "requests.json"
        path.write_text(
            json.dumps(
                {
                    "requests": [
                        {"benchmark": "diffeq", "deadline": 12},
                        {"benchmark": "diffeq", "deadline": 12},
                    ]
                }
            )
        )
        return str(path)

    def test_batch_solves_and_reports_cache(self, capsys, request_file):
        import json

        assert main(["batch", request_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["batch"] == {"requests": 2, "cached": 0, "failed": 0}
        assert doc["responses"][0]["key"] == doc["responses"][1]["key"]
        assert doc["metrics"]["serve.solves"] == 1.0

    def test_batch_warm_cache_dir(self, capsys, tmp_path, request_file):
        cache = str(tmp_path / "cache")
        assert main(["batch", request_file, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", request_file, "--cache-dir", cache]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["batch"]["cached"] == 2
        assert doc["metrics"].get("serve.solves", 0.0) == 0.0

    def test_batch_out_file(self, tmp_path, request_file):
        out = tmp_path / "results.json"
        assert main(["batch", request_file, "--out", str(out)]) == 0
        import json

        doc = json.loads(out.read_text())
        assert len(doc["responses"]) == 2

    def test_batch_missing_file_exits_two(self, capsys):
        assert main(["batch", "no-such-file.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_batch_failing_request_exits_one(self, capsys, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps([{"benchmark": "diffeq", "deadline": 1}])
        )
        assert main(["batch", str(path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["batch"]["failed"] == 1
        assert doc["responses"][0]["error"]["type"] == "InfeasibleError"


class TestPortfolioSubcommand:
    """Pinned exit codes and output for `repro-hls portfolio`."""

    def test_portfolio_runs_clean(self, capsys):
        assert main(
            ["portfolio", "diffeq", "-L", "12", "--budget", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "portfolio: best cost" in out
        assert "seed (repeat) cost" in out
        assert "optimality gap" in out

    def test_portfolio_flags_before_positional(self, capsys):
        # a regular (non-REMAINDER) subcommand: leading flags parse fine
        assert main(
            ["portfolio", "--budget", "200", "diffeq", "-L", "12"]
        ) == 0
        assert "portfolio: best cost" in capsys.readouterr().out

    def test_portfolio_unknown_benchmark_exits_one(self, capsys):
        assert main(["portfolio", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_portfolio_infeasible_deadline_exits_one(self, capsys):
        assert main(["portfolio", "diffeq", "-L", "2"]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "minimum feasible" in err

    def test_portfolio_unknown_solver_exits_one(self, capsys):
        assert main(
            ["portfolio", "diffeq", "-L", "12", "--solvers", "tabu"]
        ) == 1
        assert "unknown portfolio solver" in capsys.readouterr().err

    def test_portfolio_solver_subset(self, capsys):
        assert main(
            ["portfolio", "diffeq", "-L", "12", "--budget", "100",
             "--solvers", "annealing,rank"]
        ) == 0
        out = capsys.readouterr().out
        assert "annealing" in out and "rank" in out
        assert "genetic" not in out


class TestLintSubcommand:
    """`repro-hls lint` forwards to lintkit with its 0/1/2 convention."""

    @staticmethod
    def _tree(tmp_path, bad):
        pkg = tmp_path / "repro"
        sub = pkg / "sched"
        sub.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (sub / "__init__.py").write_text("")
        body = "def f(c):\n    return c == 0.5\n" if bad else "X = 1\n"
        (sub / "mod.py").write_text(body)
        return str(pkg)

    def test_lint_clean_exits_zero(self, capsys, tmp_path):
        assert main(["lint", self._tree(tmp_path, bad=False)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_findings_exit_one(self, capsys, tmp_path):
        assert main(["lint", self._tree(tmp_path, bad=True)]) == 1
        out = capsys.readouterr().out
        assert "RL002" in out

    def test_lint_json_format_forwarded(self, capsys, tmp_path):
        import json

        assert main(
            ["lint", self._tree(tmp_path, bad=True), "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_lint_usage_error_exits_two(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "missing")]) == 2
        assert "error:" in capsys.readouterr().err


class TestVerifySubcommand:
    """Pinned exit codes and messages for `repro-hls verify`."""

    def test_verify_clean_exits_zero(self, capsys):
        assert main(["verify", "diffeq", "-L", "12"]) == 0
        out = capsys.readouterr().out
        assert "deadline 12" in out
        assert "[ok]" in out

    def test_verify_infeasible_deadline_exits_one(self, capsys):
        assert main(["verify", "diffeq", "-L", "2"]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "minimum feasible" in err

    def test_verify_unknown_benchmark_exits_one(self, capsys):
        assert main(["verify", "nope"]) == 1
        assert "error" in capsys.readouterr().err


class TestFuzzSubcommand:
    """`repro-hls fuzz` forwards to checkkit with its 0/1/2 convention."""

    def test_fuzz_clean_exits_zero(self, capsys):
        assert main(["fuzz", "--budget", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "checkkit fuzz: budget 2, seed 5" in out
        assert out.strip().endswith("verdict: clean")

    def test_fuzz_flags_forward_even_when_first(self, capsys):
        # the forwarded tail starts with an option; the top-level parser
        # must not swallow or reject it
        assert main(["fuzz", "--list-suites"]) == 0
        assert "generator specs:" in capsys.readouterr().out

    def test_fuzz_usage_error_exits_two(self, capsys):
        assert main(["fuzz", "--budget", "-1"]) == 2
        assert "error: budget must be >= 0, got -1" in capsys.readouterr().err

    def test_fuzz_replay_round_trips(self, capsys):
        assert main(["fuzz", "--replay", "out_tree", "3"]) == 0
        assert capsys.readouterr().out.startswith("out_tree/3:")


class TestBenchSubcommand:
    """`repro-hls bench` forwards to the BENCH_*.json differ."""

    @staticmethod
    def _write(path, *, bench="engine", wall_s=1.0, speedup=3.0,
               timestamp="2026-08-08T00:00:00+00:00"):
        path.write_text(json.dumps({
            "bench": bench,
            "wall_s": wall_s,
            "speedup": speedup,
            "config": {},
            "git_sha": "deadbeef",
            "timestamp": timestamp,
        }))
        return str(path)

    def test_bench_help_forwards_even_when_first(self, capsys):
        # same bpo-17050 regression class as lint/serve/batch
        assert main(["bench", "--help"]) == 0
        assert "repro-hls bench" in capsys.readouterr().out

    def test_bench_compare_clean_exits_zero(self, capsys, tmp_path):
        base = self._write(tmp_path / "a.json", wall_s=1.0)
        current = self._write(tmp_path / "b.json", wall_s=1.1)
        assert main(["bench", "--compare", base, current]) == 0
        assert "wall_s" in capsys.readouterr().out

    def test_bench_compare_regression_exits_one(self, capsys, tmp_path):
        base = self._write(tmp_path / "a.json", wall_s=1.0, speedup=4.0)
        current = self._write(tmp_path / "b.json", wall_s=2.0, speedup=4.0)
        assert main(["bench", "--compare", base, current]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regression(s) found" in captured.err

    def test_bench_compare_unreadable_exits_two(self, capsys, tmp_path):
        base = self._write(tmp_path / "a.json")
        assert main(
            ["bench", "--compare", base, str(tmp_path / "missing.json")]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_usage_error_exits_two(self, capsys):
        assert main(["bench"]) == 2
        assert "required" in capsys.readouterr().err

    def test_bench_history_diffs_latest_pair(self, capsys, tmp_path):
        self._write(tmp_path / "engine-1.json", wall_s=1.0,
                    timestamp="2026-08-01T00:00:00+00:00")
        self._write(tmp_path / "engine-2.json", wall_s=1.05,
                    timestamp="2026-08-02T00:00:00+00:00")
        self._write(tmp_path / "serve-1.json", bench="serve", wall_s=2.0,
                    timestamp="2026-08-01T00:00:00+00:00")
        assert main(["bench", "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "engine" in out
        # a single serve run has nothing to diff against
        assert "only 1 run" in out or "serve" not in out
