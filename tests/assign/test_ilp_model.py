"""Unit tests for the ILP model builder (Ito et al. formulation)."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.exact import brute_force_assign, exact_assign
from repro.assign.ilp_model import build_ilp, check_solution, to_lp_format
from repro.errors import TableError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag


@pytest.fixture
def instance(wide_dag):
    table = random_table(wide_dag, num_types=3, seed=0)
    deadline = min_completion_time(wide_dag, table) + 4
    return wide_dag, table, deadline


class TestModelShape:
    def test_variable_counts(self, instance):
        dfg, table, deadline = instance
        model = build_ilp(dfg, table, deadline)
        n, m = len(dfg), table.num_types
        assert len(model.binaries) == n * m
        assert len(model.continuous) == n
        assert model.num_variables() == n * (m + 1)

    def test_constraint_counts(self, instance):
        dfg, table, deadline = instance
        model = build_ilp(dfg, table, deadline)
        n = len(dfg)
        edges = dfg.num_edges()
        roots = len(dfg.roots())
        # choose(n) + deadline(n) + path(edges) + source(roots)
        assert model.num_constraints() == 2 * n + edges + roots

    def test_objective_covers_all_costs(self, instance):
        dfg, table, deadline = instance
        model = build_ilp(dfg, table, deadline)
        total = sum(model.objective.values())
        expected = sum(
            table.cost(n, j) for n in dfg.nodes() for j in range(table.num_types)
        )
        assert total == pytest.approx(expected)

    def test_negative_deadline_rejected(self, instance):
        dfg, table, _ = instance
        with pytest.raises(TableError):
            build_ilp(dfg, table, -1)


class TestLPFormat:
    def test_sections_present(self, instance):
        dfg, table, deadline = instance
        text = to_lp_format(build_ilp(dfg, table, deadline))
        for section in ("Minimize", "Subject To", "Bounds", "Binaries", "End"):
            assert section in text

    def test_mentions_every_variable(self, instance):
        dfg, table, deadline = instance
        model = build_ilp(dfg, table, deadline)
        text = to_lp_format(model)
        for v in model.binaries:
            assert v in text
        for v in model.continuous:
            assert v in text

    def test_deadline_in_bounds(self, instance):
        dfg, table, deadline = instance
        text = to_lp_format(build_ilp(dfg, table, deadline))
        assert f"<= {deadline}" in text


class TestCheckSolution:
    def test_optimal_assignment_is_model_feasible(self, instance):
        dfg, table, deadline = instance
        model = build_ilp(dfg, table, deadline)
        result = exact_assign(dfg, table, deadline)
        objective = check_solution(model, dfg, table, result.assignment)
        assert objective == pytest.approx(result.cost)

    def test_infeasible_assignment_rejected(self, instance):
        dfg, table, _ = instance
        floor = min_completion_time(dfg, table)
        model = build_ilp(dfg, table, floor)  # tightest deadline
        slowest = Assignment.cheapest(dfg, table)
        if slowest.completion_time(dfg, table) > floor:
            with pytest.raises(TableError, match="deadline"):
                check_solution(model, dfg, table, slowest)

    @pytest.mark.parametrize("seed", range(5))
    def test_model_objective_equals_system_cost(self, seed):
        """The ILP objective of any feasible assignment equals its
        system cost — the equivalence the paper relies on."""
        dfg = random_dag(8, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        deadline = min_completion_time(dfg, table) + 3
        model = build_ilp(dfg, table, deadline)
        for algo_seeded in (exact_assign, brute_force_assign):
            result = algo_seeded(dfg, table, deadline)
            assert check_solution(
                model, dfg, table, result.assignment
            ) == pytest.approx(result.cost)
