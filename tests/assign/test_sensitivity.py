"""Unit tests for sensitivity analysis."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.assign.sensitivity import marginal_cost_of_time, node_sensitivity
from repro.errors import InfeasibleError
from repro.fu.random_tables import random_table
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.suite.registry import get_benchmark


@pytest.fixture
def tree_instance():
    dfg = get_benchmark("lattice4").dag()
    table = random_table(dfg, num_types=3, seed=24)
    return dfg, table


class TestMarginalCost:
    def test_fields_consistent(self, tree_instance):
        dfg, table = tree_instance
        deadline = min_completion_time(dfg, table) + 3
        mc = marginal_cost_of_time(dfg, table, deadline)
        assert mc.deadline == deadline
        assert mc.relax_gain >= 0.0
        assert mc.tighten_penalty is None or mc.tighten_penalty >= 0.0

    def test_at_floor_tightening_infeasible(self, tree_instance):
        dfg, table = tree_instance
        floor = min_completion_time(dfg, table)
        mc = marginal_cost_of_time(dfg, table, floor)
        assert mc.tighten_penalty is None

    def test_matches_frontier(self, tree_instance):
        """Marginal costs are the frontier's discrete derivative."""
        from repro.assign.tree_assign import tree_assign

        dfg, table = tree_instance
        floor = min_completion_time(dfg, table)
        deadline = floor + 4
        mc = marginal_cost_of_time(dfg, table, deadline)
        c_prev = tree_assign(dfg, table, deadline - 1).cost
        c_next = tree_assign(dfg, table, deadline + 1).cost
        assert mc.tighten_penalty == pytest.approx(c_prev - mc.cost)
        assert mc.relax_gain == pytest.approx(mc.cost - c_next)

    def test_infeasible_deadline_raises(self, tree_instance):
        dfg, table = tree_instance
        floor = min_completion_time(dfg, table)
        with pytest.raises(InfeasibleError):
            marginal_cost_of_time(dfg, table, floor - 1)

    def test_saturated_regime_all_zero(self, tree_instance):
        dfg, table = tree_instance
        huge = 10 * min_completion_time(dfg, table)
        mc = marginal_cost_of_time(dfg, table, huge)
        assert mc.relax_gain == 0.0
        assert mc.tighten_penalty == pytest.approx(0.0)

    def test_dag_instance(self):
        dfg = get_benchmark("elliptic").dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 5
        mc = marginal_cost_of_time(dfg, table, deadline)
        assert mc.cost > 0


class TestNodeSensitivity:
    def test_pinned_node_detected(self):
        """A chain at its floor pins every node to its fastest type."""
        dfg = DFG.from_edges([("a", "b")])
        table = TimeCostTable.from_rows(
            {"a": ([1, 3], [9.0, 1.0]), "b": ([1, 4], [8.0, 1.0])}
        )
        floor = min_completion_time(dfg, table)  # = 2
        sens = node_sensitivity(dfg, table, floor)
        assert all(s.pinned_fastest for s in sens)
        # forcing the slow type is infeasible at the floor
        for s in sens:
            assert s.regret_per_type[1] is None

    def test_indifferent_node_detected(self):
        """Identical rows at a loose deadline: any type is optimal."""
        dfg = DFG()
        dfg.add_node("x")
        table = TimeCostTable.from_rows({"x": ([2, 2], [5.0, 5.0])})
        sens = node_sensitivity(dfg, table, 10)
        assert sens[0].indifferent
        assert not sens[0].pinned_fastest

    def test_regret_of_expensive_forced_choice(self):
        dfg = DFG()
        dfg.add_node("x")
        table = TimeCostTable.from_rows({"x": ([1, 3], [9.0, 2.0])})
        sens = node_sensitivity(dfg, table, 10)[0]
        assert sens.regret_per_type[1] == pytest.approx(0.0)  # optimal
        assert sens.regret_per_type[0] == pytest.approx(7.0)  # forced fast

    def test_subset_of_nodes(self, tree_instance):
        dfg, table = tree_instance
        deadline = min_completion_time(dfg, table) + 3
        sens = node_sensitivity(dfg, table, deadline, nodes=["s1_m1"])
        assert len(sens) == 1 and str(sens[0].node) == "s1_m1"

    def test_regrets_nonnegative_on_trees(self, tree_instance):
        dfg, table = tree_instance
        deadline = min_completion_time(dfg, table) + 2
        for s in node_sensitivity(dfg, table, deadline):
            for r in s.regret_per_type.values():
                assert r is None or r >= -1e-9
