"""Unit tests for DFG_Expand (critical-path tree extraction)."""

import pytest

from repro.assign.dfg_expand import dfg_expand
from repro.errors import GraphError
from repro.graph.classify import is_out_forest
from repro.graph.dfg import DFG
from repro.graph.paths import enumerate_root_leaf_paths


def path_signatures(dfg, origin=None):
    """Multiset of root→leaf paths as tuples of (original) node names."""
    sigs = []
    for path in enumerate_root_leaf_paths(dfg):
        if origin:
            sigs.append(tuple(origin[n] for n in path))
        else:
            sigs.append(tuple(path))
    return sorted(sigs)


class TestShape:
    def test_tree_is_unchanged(self, small_tree):
        tree = dfg_expand(small_tree)
        assert len(tree) == len(small_tree)
        assert tree.duplicated_originals() == []

    def test_output_is_out_forest(self, diamond, wide_dag):
        for g in (diamond, wide_dag):
            assert is_out_forest(dfg_expand(g).tree)

    def test_diamond_duplicates_sink(self, diamond):
        tree = dfg_expand(diamond)
        assert len(tree) == 5  # d copied once
        assert tree.duplicated_originals() == ["d"]
        assert len(tree.copies["d"]) == 2

    def test_ops_preserved_on_copies(self, diamond):
        diamond2 = diamond.copy()
        diamond2.set_attr("d", "op", "mul")
        tree = dfg_expand(diamond2)
        for copy in tree.copies["d"]:
            assert tree.tree.op(copy) == "mul"

    def test_origin_mapping_total(self, wide_dag):
        tree = dfg_expand(wide_dag)
        for n in tree.tree.nodes():
            assert tree.origin_of(n) in wide_dag

    def test_origin_of_unknown(self, diamond):
        tree = dfg_expand(diamond)
        with pytest.raises(GraphError):
            tree.origin_of("nope")


class TestPathPreservation:
    def test_diamond_paths(self, diamond):
        tree = dfg_expand(diamond)
        assert path_signatures(tree.tree, tree.origin) == path_signatures(diamond)

    def test_wide_dag_paths(self, wide_dag):
        tree = dfg_expand(wide_dag)
        assert path_signatures(tree.tree, tree.origin) == path_signatures(wide_dag)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dag_paths(self, seed):
        from repro.suite.synthetic import random_dag

        g = random_dag(10, edge_prob=0.3, seed=seed)
        tree = dfg_expand(g)
        assert is_out_forest(tree.tree)
        assert path_signatures(tree.tree, tree.origin) == path_signatures(g)

    def test_transpose_paths_are_reversed(self, wide_dag):
        tree = dfg_expand(wide_dag.transpose(), transposed=True)
        assert tree.transposed
        fwd = path_signatures(wide_dag)
        rev = sorted(tuple(reversed(p)) for p in path_signatures(
            tree.tree, tree.origin
        ))
        assert rev == fwd


class TestBookkeeping:
    def test_copies_partition_tree_nodes(self, wide_dag):
        tree = dfg_expand(wide_dag)
        all_copies = [c for copies in tree.copies.values() for c in copies]
        assert sorted(map(str, all_copies)) == sorted(
            map(str, tree.tree.nodes())
        )

    def test_duplicated_sorted_by_copy_count(self):
        # two separate common nodes with different path multiplicities
        g = DFG.from_edges(
            [
                ("a", "x"), ("b", "x"), ("c", "x"),  # x: 3 parents
                ("a", "y"), ("b", "y"),              # y: 2 parents
            ]
        )
        tree = dfg_expand(g)
        dup = tree.duplicated_originals()
        assert dup == ["x", "y"]
        assert len(tree.copies["x"]) == 3
        assert len(tree.copies["y"]) == 2

    def test_len_is_tree_size(self, diamond):
        tree = dfg_expand(diamond)
        assert len(tree) == len(tree.tree)


class TestGuards:
    def test_node_limit(self):
        # stacked diamonds: exponential expansion must hit the guard
        g = DFG()
        prev = "n0"
        g.add_node(prev)
        for i in range(12):
            t, b, j = f"t{i}", f"b{i}", f"n{i + 1}"
            g.add_edge(prev, t, 0)
            g.add_edge(prev, b, 0)
            g.add_edge(t, j, 0)
            g.add_edge(b, j, 0)
            prev = j
        with pytest.raises(GraphError, match="node_limit"):
            dfg_expand(g, node_limit=500)

    def test_rejects_delayed_edges(self):
        g = DFG.from_edges([("a", "b", 1)])
        with pytest.raises(GraphError, match="delay"):
            dfg_expand(g)

    def test_rejects_cycles(self):
        g = DFG.from_edges([("a", "b", 0), ("b", "a", 0)])
        from repro.errors import CyclicDependencyError

        with pytest.raises(CyclicDependencyError):
            dfg_expand(g)
