"""Unit tests for Pareto cost/latency frontiers."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.assign.frontier import dfg_frontier, frontier_knees, tree_frontier
from repro.assign.tree_assign import tree_assign
from repro.errors import InfeasibleError, NotATreeError
from repro.fu.random_tables import random_table
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.suite.registry import get_benchmark


class TestKnees:
    def test_collapses_plateaus(self):
        points = [(1, 10.0), (2, 10.0), (3, 8.0), (4, 8.0), (5, 5.0)]
        assert frontier_knees(points) == [(1, 10.0), (3, 8.0), (5, 5.0)]

    def test_empty(self):
        assert frontier_knees([]) == []

    def test_single(self):
        assert frontier_knees([(3, 7.0)]) == [(3, 7.0)]

    def test_float_noise_at_large_scale_is_not_a_knee(self):
        # Energy-scale costs: a drop of 1e-7 at scale 1e7 is float
        # round-off, not an improvement.  The absolute 1e-12 tolerance
        # this function used to apply recorded it as a spurious knee.
        points = [(1, 1.0e7), (2, 1.0e7 - 1e-7), (3, 0.9e7)]
        assert frontier_knees(points) == [(1, 1.0e7), (3, 0.9e7)]

    def test_real_improvements_at_large_scale_are_kept(self):
        points = [(1, 5_000_000.0), (2, 4_999_999.0), (3, 4_000_000.0)]
        assert frontier_knees(points) == points

    def test_small_scale_behaviour_unchanged(self):
        points = [(1, 3.0), (2, 2.5), (3, 2.5), (4, 1.0)]
        assert frontier_knees(points) == [(1, 3.0), (2, 2.5), (4, 1.0)]


class TestTreeFrontier:
    @pytest.fixture
    def setup(self):
        dfg = get_benchmark("lattice4").dag()
        table = random_table(dfg, num_types=3, seed=0)
        return dfg, table

    def test_starts_at_floor(self, setup):
        dfg, table = setup
        floor = min_completion_time(dfg, table)
        frontier = tree_frontier(dfg, table, max_deadline=floor + 20)
        assert frontier[0].deadline == floor

    def test_strictly_decreasing_costs(self, setup):
        dfg, table = setup
        frontier = tree_frontier(dfg, table, max_deadline=80)
        costs = [c for _, c in frontier]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_points_match_tree_assign(self, setup):
        dfg, table = setup
        frontier = tree_frontier(dfg, table, max_deadline=60)
        for deadline, cost in frontier:
            assert tree_assign(dfg, table, deadline).cost == pytest.approx(cost)

    def test_ends_at_cheapest(self, setup):
        dfg, table = setup
        loose = sum(int(table.times(n).max()) for n in dfg.nodes())
        frontier = tree_frontier(dfg, table, max_deadline=loose)
        assert frontier[-1].cost == pytest.approx(
            sum(table.min_cost(n) for n in dfg.nodes())
        )

    def test_infeasible_horizon(self, setup):
        dfg, table = setup
        with pytest.raises(InfeasibleError):
            tree_frontier(dfg, table, max_deadline=1)

    def test_rejects_general_dag(self):
        # Regression: used to raise InfeasibleError, conflating "not a
        # tree" with "no feasible assignment"; the documented contract
        # (matching tree_assign) is NotATreeError.
        dfg = get_benchmark("elliptic").dag()
        table = random_table(dfg, num_types=3, seed=0)
        with pytest.raises(NotATreeError, match="dfg_frontier"):
            tree_frontier(dfg, table, max_deadline=100)

    def test_empty_forest_is_the_zero_frontier(self):
        frontier = tree_frontier(DFG(name="empty"), TimeCostTable(2), max_deadline=7)
        assert len(frontier) == 1
        assert frontier[0].deadline == 0
        assert frontier[0].cost == pytest.approx(0.0)
        assert list(frontier[0]) == [0, 0.0]

    def test_points_carry_witness_assignments(self, setup):
        dfg, table = setup
        frontier = tree_frontier(dfg, table, max_deadline=60)
        for point in frontier:
            assert point.assignment is not None
            result = tree_assign(dfg, table, point.deadline)
            assert point.assignment.total_cost(dfg, table) == pytest.approx(
                result.cost
            )

    def test_points_unpack_like_pairs(self, setup):
        dfg, table = setup
        frontier = tree_frontier(dfg, table, max_deadline=60)
        as_dict = dict(frontier)
        for deadline, cost in frontier:
            assert as_dict[deadline] == pytest.approx(cost)

    def test_positional_max_deadline_warns_but_works(self, setup, monkeypatch):
        import repro.apiutil

        monkeypatch.setattr(repro.apiutil, "STRICT_API", False)
        dfg, table = setup
        with pytest.warns(DeprecationWarning, match="max_deadline"):
            old_style = tree_frontier(dfg, table, 60)  # legacy positional
        assert old_style == tree_frontier(dfg, table, max_deadline=60)

    def test_positional_max_deadline_rejected_under_freeze(self, setup):
        dfg, table = setup
        with pytest.raises(TypeError, match="STRICT_API"):
            tree_frontier(dfg, table, 60)  # legacy positional


class TestDfgFrontier:
    @pytest.fixture
    def setup(self, wide_dag):
        table = random_table(wide_dag, num_types=3, seed=1)
        return wide_dag, table

    def test_monotone(self, setup):
        dfg, table = setup
        floor = min_completion_time(dfg, table)
        frontier = dfg_frontier(dfg, table, max_deadline=floor + 15)
        costs = [c for _, c in frontier]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_exact_dominates_heuristic(self, setup):
        dfg, table = setup
        floor = min_completion_time(dfg, table)
        heur = dict(dfg_frontier(dfg, table, max_deadline=floor + 10))
        opt = dict(dfg_frontier(dfg, table, max_deadline=floor + 10, exact=True))
        # compare the achievable cost at every deadline in both
        for deadline in range(floor, floor + 11):
            h = min(c for d, c in heur.items() if d <= deadline)
            o = min(c for d, c in opt.items() if d <= deadline)
            assert o <= h + 1e-9

    def test_swept_matches_reference(self, setup):
        dfg, table = setup
        floor = min_completion_time(dfg, table)
        ref = dfg_frontier(dfg, table, max_deadline=floor + 15, incremental=False)
        assert dfg_frontier(dfg, table, max_deadline=floor + 15) == ref

    def test_below_floor_raises(self, setup):
        dfg, table = setup
        floor = min_completion_time(dfg, table)
        with pytest.raises(InfeasibleError):
            dfg_frontier(dfg, table, max_deadline=floor - 1)

    def test_tree_and_dfg_agree_on_forests(self):
        dfg = get_benchmark("diffeq").dag()  # an in-forest
        table = random_table(dfg, num_types=3, seed=2)
        floor = min_completion_time(dfg, table)
        t = dict(tree_frontier(dfg, table, max_deadline=floor + 8))
        d = dict(dfg_frontier(dfg, table, max_deadline=floor + 8))
        for deadline in range(floor, floor + 9):
            tc = min(c for dl, c in t.items() if dl <= deadline)
            dc = min(c for dl, c in d.items() if dl <= deadline)
            assert tc == pytest.approx(dc)
