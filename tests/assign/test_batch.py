"""Batched assignment entry points vs their scalar counterparts.

``dfg_assign_repeat_batch`` / ``dfg_frontier_batch`` /
``tree_frontier_batch`` promise *bit-identity* with per-job scalar
calls — same assignments, costs, ``DPStats`` integer counters, and
error strings — plus independence across jobs (one failing lane never
poisons its batch).  Hand-picked suite graphs keep these fast; the
exhaustive every-benchmark sweep is in
``tests/properties/test_prop_batch.py``.
"""

from __future__ import annotations

import pytest

from repro.assign import (
    BatchJob,
    dfg_assign_once,
    dfg_assign_repeat,
    dfg_assign_repeat_batch,
    dfg_frontier,
    dfg_frontier_batch,
    min_completion_time,
    tree_frontier_batch,
)
from repro.assign.frontier import tree_frontier
from repro.engine import DPStats
from repro.errors import InfeasibleError, NotATreeError, ReproError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.suite.registry import get_benchmark


def _instance(name: str, seed: int = 24):
    dfg = get_benchmark(name).dag()
    table = random_table(dfg, num_types=3, seed=seed)
    return dfg, table, min_completion_time(dfg, table)


def _same_result(got, want) -> None:
    assert dict(got.assignment.items()) == dict(want.assignment.items())
    assert got.cost == want.cost
    assert got.completion_time == want.completion_time
    assert got.algorithm == want.algorithm


def _int_counters(stats) -> dict:
    # Work counters only: the seconds_* fields are wall-clock.
    counters = {
        k: v
        for k, v in stats.as_dict().items()
        if not k.startswith("seconds")
    }
    assert counters  # guard against the filter going vacuous
    return counters


def test_repeat_batch_matches_scalar_results_and_stats():
    dfg, table, floor = _instance("elliptic")
    deadlines = [floor, floor + 3, floor + 7]
    outcomes = dfg_assign_repeat_batch(
        [BatchJob(dfg, table, d) for d in deadlines]
    )
    for deadline, outcome in zip(deadlines, outcomes):
        assert outcome.error is None
        stats = DPStats()
        scalar = dfg_assign_repeat(dfg, table, deadline, stats=stats)
        _same_result(outcome.result, scalar)
        _same_result(outcome.once, dfg_assign_once(dfg, table, deadline))
        assert _int_counters(outcome.stats) == _int_counters(stats)


def test_repeat_batch_accepts_plain_tuples_and_empty():
    assert dfg_assign_repeat_batch([]) == []
    dfg, table, floor = _instance("diffeq")
    (outcome,) = dfg_assign_repeat_batch([(dfg, table, floor + 2)])
    assert outcome.error is None
    _same_result(outcome.result, dfg_assign_repeat(dfg, table, floor + 2))


def test_failing_lane_is_isolated_with_scalar_error_string():
    dfg, table, floor = _instance("rls_laguerre")
    bad = floor - 1
    outcomes = dfg_assign_repeat_batch(
        [BatchJob(dfg, table, bad), BatchJob(dfg, table, floor + 2)]
    )
    assert isinstance(outcomes[0].error, InfeasibleError)
    assert outcomes[0].result is None
    with pytest.raises(ReproError) as scalar_exc:
        dfg_assign_repeat(dfg, table, bad)
    assert str(outcomes[0].error) == str(scalar_exc.value)
    assert outcomes[1].error is None
    _same_result(
        outcomes[1].result, dfg_assign_repeat(dfg, table, floor + 2)
    )


def test_mixed_structures_in_one_batch():
    jobs, expected = [], []
    for name in ("diffeq", "elliptic"):
        dfg, table, floor = _instance(name)
        for d in (floor, floor + 4):
            jobs.append(BatchJob(dfg, table, d))
            expected.append(dfg_assign_repeat(dfg, table, d))
    outcomes = dfg_assign_repeat_batch(jobs)
    for outcome, want in zip(outcomes, expected):
        assert outcome.error is None
        _same_result(outcome.result, want)


@pytest.mark.parametrize("workers", [0, 2])
@pytest.mark.parametrize("arena", [False, True])
def test_repeat_batch_invariant_to_workers_and_arena(workers, arena):
    dfg, table, floor = _instance("diffeq")
    deadlines = [floor, floor - 1, floor + 3, floor + 5]
    outcomes = dfg_assign_repeat_batch(
        [BatchJob(dfg, table, d) for d in deadlines],
        workers=workers,
        arena=arena,
    )
    baseline = dfg_assign_repeat_batch(
        [BatchJob(dfg, table, d) for d in deadlines]
    )
    for got, want in zip(outcomes, baseline):
        assert (got.error is None) == (want.error is None)
        if want.error is not None:
            assert str(got.error) == str(want.error)
            assert type(got.error) is type(want.error)
        else:
            _same_result(got.result, want.result)
            _same_result(got.once, want.once)
        assert _int_counters(got.stats) == _int_counters(want.stats)


def test_dfg_frontier_batch_matches_scalar_sweep():
    dfg, table, floor = _instance("elliptic")
    horizon = floor + 8
    assert dfg_frontier_batch(dfg, table, max_deadline=horizon) == dfg_frontier(
        dfg, table, max_deadline=horizon
    )


def test_dfg_frontier_batch_keyword_dispatch():
    dfg, table, floor = _instance("diffeq")
    horizon = floor + 6
    assert dfg_frontier(
        dfg, table, max_deadline=horizon, batch=True
    ) == dfg_frontier(dfg, table, max_deadline=horizon)


def test_dfg_frontier_batch_infeasible_horizon():
    dfg, table, floor = _instance("diffeq")
    with pytest.raises(InfeasibleError, match="below minimum completion"):
        dfg_frontier_batch(dfg, table, max_deadline=floor - 1)


def test_tree_frontier_batch_matches_scalar_per_job():
    jobs, expected = [], []
    for name in ("lattice4", "fir8"):
        dfg, table, floor = _instance(name)
        jobs.append((dfg, table, floor + 10))
        expected.append(tree_frontier(dfg, table, max_deadline=floor + 10))
    assert tree_frontier_batch(jobs) == expected
    assert tree_frontier_batch([]) == []


def test_tree_frontier_batch_rejects_general_dags():
    dfg, table, floor = _instance("elliptic")
    with pytest.raises(NotATreeError, match="use dfg_frontier"):
        tree_frontier_batch([(dfg, table, floor + 2)])


def test_tree_frontier_keyword_dispatch():
    tree, table, floor = _instance("volterra")
    assert tree_frontier(
        tree, table, max_deadline=floor + 8, batch=True
    ) == tree_frontier(tree, table, max_deadline=floor + 8)


def test_repeat_batch_cyclic_job_carries_scalar_error():
    cyclic = DFG.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a")], name="cyclic3"
    )
    acyclic, table, floor = _instance("diffeq")
    cyclic_table = random_table(acyclic, num_types=3, seed=24)
    outcomes = dfg_assign_repeat_batch(
        [
            BatchJob(cyclic, cyclic_table, 10),
            BatchJob(acyclic, table, floor + 2),
        ]
    )
    assert outcomes[0].error is not None
    with pytest.raises(ReproError) as scalar_exc:
        dfg_assign_repeat(cyclic, cyclic_table, 10)
    assert str(outcomes[0].error) == str(scalar_exc.value)
    assert type(outcomes[0].error) is type(scalar_exc.value)
    assert outcomes[1].error is None
