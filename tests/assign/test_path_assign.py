"""Unit tests for Path_Assign (optimal DP on simple paths)."""

import pytest

from repro.assign.exact import brute_force_assign
from repro.assign.path_assign import chain_order, path_assign
from repro.errors import InfeasibleError, NotAPathError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG


class TestChainOrder:
    def test_orders_root_to_leaf(self, chain3):
        assert chain_order(chain3) == ["a", "b", "c"]

    def test_single_node(self):
        dfg = DFG()
        dfg.add_node("x")
        assert chain_order(dfg) == ["x"]

    def test_rejects_tree(self, small_tree):
        with pytest.raises(NotAPathError):
            chain_order(small_tree)

    def test_rejects_diamond(self, diamond):
        with pytest.raises(NotAPathError):
            chain_order(diamond)


class TestOptimality:
    def test_matches_brute_force_fixture(self, chain3, chain3_table):
        for deadline in range(4, 16):
            got = path_assign(chain3, chain3_table, deadline)
            got.verify(chain3, chain3_table)
            want = brute_force_assign(chain3, chain3_table, deadline)
            assert got.cost == pytest.approx(want.cost), deadline

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_random(self, seed):
        from repro.suite.synthetic import random_path

        dfg = random_path(6, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = sum(table.min_time(n) for n in dfg.nodes())
        for deadline in (floor, floor + 4, floor + 12):
            got = path_assign(dfg, table, deadline)
            got.verify(dfg, table)
            want = brute_force_assign(dfg, table, deadline)
            assert got.cost == pytest.approx(want.cost)

    def test_loose_deadline_gives_all_cheapest(self, chain3, chain3_table):
        result = path_assign(chain3, chain3_table, 1000)
        expected = sum(chain3_table.min_cost(n) for n in chain3.nodes())
        assert result.cost == pytest.approx(expected)

    def test_tight_deadline_gives_all_fastest_cost(self, chain3, chain3_table):
        result = path_assign(chain3, chain3_table, 4)  # exactly the floor
        assert result.completion_time == 4


class TestInfeasibility:
    def test_below_floor_raises(self, chain3, chain3_table):
        with pytest.raises(InfeasibleError) as exc:
            path_assign(chain3, chain3_table, 3)
        assert exc.value.min_feasible == 4

    def test_negative_deadline(self, chain3, chain3_table):
        with pytest.raises(InfeasibleError):
            path_assign(chain3, chain3_table, -1)


class TestResultMetadata:
    def test_algorithm_name(self, chain3, chain3_table):
        assert path_assign(chain3, chain3_table, 10).algorithm == "path_assign"

    def test_deadline_recorded(self, chain3, chain3_table):
        assert path_assign(chain3, chain3_table, 10).deadline == 10

    def test_completion_within_deadline(self, chain3, chain3_table):
        result = path_assign(chain3, chain3_table, 9)
        assert result.completion_time <= 9

    def test_deterministic(self, chain3, chain3_table):
        r1 = path_assign(chain3, chain3_table, 8)
        r2 = path_assign(chain3, chain3_table, 8)
        assert dict(r1.assignment.items()) == dict(r2.assignment.items())


class TestMonotonicity:
    def test_cost_non_increasing_in_deadline(self, chain3, chain3_table):
        costs = [
            path_assign(chain3, chain3_table, L).cost for L in range(4, 20)
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
