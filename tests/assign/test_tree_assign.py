"""Unit tests for Tree_Assign (optimal DP on trees/forests)."""

import numpy as np
import pytest

from repro.assign.exact import brute_force_assign
from repro.assign.path_assign import path_assign
from repro.assign.tree_assign import tree_assign, tree_cost_curve
from repro.errors import InfeasibleError, NotATreeError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_tree


class TestShapes:
    def test_out_tree(self, small_tree):
        table = random_table(small_tree, seed=0)
        result = tree_assign(small_tree, table, 30)
        result.verify(small_tree, table)

    def test_in_tree_via_transpose(self, small_tree):
        in_tree = small_tree.transpose()
        table = random_table(in_tree, seed=0)
        result = tree_assign(in_tree, table, 30)
        result.verify(in_tree, table)

    def test_chain_agrees_with_path_assign(self, chain3, chain3_table):
        for deadline in range(4, 14):
            t = tree_assign(chain3, chain3_table, deadline)
            p = path_assign(chain3, chain3_table, deadline)
            assert t.cost == pytest.approx(p.cost)

    def test_forest_multiple_roots(self):
        from repro.graph.dfg import DFG

        forest = DFG.from_edges([("r1", "x"), ("r2", "y"), ("r2", "z")])
        table = random_table(forest, seed=1)
        result = tree_assign(forest, table, 25)
        result.verify(forest, table)

    def test_single_node(self):
        from repro.graph.dfg import DFG

        dfg = DFG()
        dfg.add_node("x")
        table = random_table(dfg, seed=2)
        result = tree_assign(dfg, table, 100)
        assert result.cost == pytest.approx(table.min_cost("x"))

    def test_rejects_general_dag(self, wide_dag):
        table = random_table(wide_dag, seed=0)
        with pytest.raises(NotATreeError):
            tree_assign(wide_dag, table, 100)

    def test_empty_forest_assigns_nothing(self):
        # Regression: used to crash in combine_children ("needs at
        # least one curve") instead of returning the empty assignment.
        from repro.fu.table import TimeCostTable
        from repro.graph.dfg import DFG

        result = tree_assign(DFG(name="empty"), TimeCostTable(3), 10)
        assert len(result.assignment) == 0
        assert result.cost == 0.0
        assert result.completion_time == 0

    def test_empty_forest_zero_curve(self):
        from repro.fu.table import TimeCostTable
        from repro.graph.dfg import DFG

        curve = tree_cost_curve(DFG(name="empty"), TimeCostTable(3), 6)
        np.testing.assert_array_equal(curve, np.zeros(7))


class TestOptimality:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_out_trees(self, seed):
        tree = random_tree(7, seed=seed, out_tree=True)
        table = random_table(tree, num_types=3, seed=seed)
        from repro.assign.assignment import min_completion_time

        floor = min_completion_time(tree, table)
        for deadline in (floor, floor + 3, floor + 8):
            got = tree_assign(tree, table, deadline)
            got.verify(tree, table)
            want = brute_force_assign(tree, table, deadline)
            assert got.cost == pytest.approx(want.cost)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_in_trees(self, seed):
        tree = random_tree(7, seed=seed, out_tree=False)
        table = random_table(tree, num_types=3, seed=seed)
        from repro.assign.assignment import min_completion_time

        floor = min_completion_time(tree, table)
        for deadline in (floor, floor + 5):
            got = tree_assign(tree, table, deadline)
            got.verify(tree, table)
            want = brute_force_assign(tree, table, deadline)
            assert got.cost == pytest.approx(want.cost)

    def test_loose_deadline_all_cheapest(self, small_tree):
        table = random_table(small_tree, seed=3)
        result = tree_assign(small_tree, table, 10_000)
        expected = sum(table.min_cost(n) for n in small_tree.nodes())
        assert result.cost == pytest.approx(expected)


class TestCostCurve:
    def test_non_increasing(self, small_tree):
        table = random_table(small_tree, seed=4)
        curve = tree_cost_curve(small_tree, table, 40)
        finite = curve[np.isfinite(curve)]
        assert (np.diff(finite) <= 1e-12).all()

    def test_first_finite_is_min_completion(self, small_tree):
        from repro.assign.assignment import min_completion_time
        from repro.assign.dpkernel import first_feasible_budget

        table = random_table(small_tree, seed=5)
        curve = tree_cost_curve(small_tree, table, 60)
        assert first_feasible_budget(curve) == min_completion_time(
            small_tree, table
        )

    def test_curve_values_match_tree_assign(self, small_tree):
        table = random_table(small_tree, seed=6)
        curve = tree_cost_curve(small_tree, table, 30)
        for deadline in range(len(curve)):
            if np.isfinite(curve[deadline]):
                result = tree_assign(small_tree, table, deadline)
                assert result.cost == pytest.approx(curve[deadline])


class TestNodeKey:
    def test_copies_share_rows(self):
        """Two copies of a node must use the original's table row."""
        from repro.graph.dfg import DFG

        tree = DFG(name="copies")
        tree.add_node("r", op="op")
        tree.add_node("x~1", op="op", origin="x")
        tree.add_node("x~2", op="op", origin="x")
        tree.add_edge("r", "x~1", 0)
        tree.add_edge("r", "x~2", 0)
        from repro.fu.table import TimeCostTable

        table = TimeCostTable.from_rows(
            {"r": ([1, 2], [5.0, 1.0]), "x": ([1, 3], [8.0, 2.0])}
        )
        key = lambda n: tree.attr(n, "origin") or n
        result = tree_assign(tree, table, 5, node_key=key)
        # cost counts both copies (tree semantics), cheapest feasible:
        # r=1 (t2,c1) leaves budget 3 for each x -> both type 1 (c2)
        assert result.cost == pytest.approx(1.0 + 2.0 + 2.0)


class TestInfeasibility:
    def test_below_floor(self, small_tree):
        table = random_table(small_tree, seed=7)
        from repro.assign.assignment import min_completion_time

        floor = min_completion_time(small_tree, table)
        with pytest.raises(InfeasibleError) as exc:
            tree_assign(small_tree, table, floor - 1)
        assert exc.value.min_feasible == floor

    def test_negative_deadline(self, small_tree):
        table = random_table(small_tree, seed=8)
        with pytest.raises(InfeasibleError):
            tree_assign(small_tree, table, -5)
