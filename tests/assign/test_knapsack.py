"""Unit tests for the 0-1 Knapsack ↔ HAP reduction (NP-completeness)."""

import itertools

import pytest

from repro.assign.knapsack import (
    SKIPPED,
    TAKEN,
    KnapsackInstance,
    hap_from_knapsack,
    solve_knapsack_via_hap,
)
from repro.errors import TableError
from repro.graph.classify import is_simple_path


def knapsack_dp(values, weights, capacity):
    """Classical O(nW) knapsack DP, the independent oracle."""
    best = [0.0] * (capacity + 1)
    for v, w in zip(values, weights):
        for c in range(capacity, w - 1, -1):
            best[c] = max(best[c], best[c - w] + v)
    return best[capacity]


class TestInstanceValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(TableError):
            KnapsackInstance(values=(1.0,), weights=(1, 2), capacity=3)

    def test_negative_rejected(self):
        with pytest.raises(TableError):
            KnapsackInstance(values=(-1.0,), weights=(1,), capacity=3)
        with pytest.raises(TableError):
            KnapsackInstance(values=(1.0,), weights=(-1,), capacity=3)
        with pytest.raises(TableError):
            KnapsackInstance(values=(1.0,), weights=(1,), capacity=-1)


class TestReductionStructure:
    def test_builds_simple_path(self):
        inst = KnapsackInstance(values=(3.0, 4.0), weights=(2, 3), capacity=4)
        dfg, table = hap_from_knapsack(inst)
        assert is_simple_path(dfg)
        assert table.num_types == 2

    def test_taken_type_costs_flipped_value(self):
        inst = KnapsackInstance(values=(3.0, 5.0), weights=(2, 3), capacity=4)
        _, table = hap_from_knapsack(inst)
        vmax = 5.0
        assert table.cost("item0", TAKEN) == pytest.approx(vmax - 3.0)
        assert table.cost("item0", SKIPPED) == pytest.approx(vmax)
        assert table.time("item0", TAKEN) == 2
        assert table.time("item0", SKIPPED) == 0

    def test_empty_instance_rejected(self):
        with pytest.raises(TableError):
            hap_from_knapsack(KnapsackInstance(values=(), weights=(), capacity=1))


class TestSolving:
    def test_trivial(self):
        inst = KnapsackInstance(values=(10.0,), weights=(5,), capacity=5)
        value, taken = solve_knapsack_via_hap(inst)
        assert value == 10.0 and taken == [0]

    def test_too_heavy(self):
        inst = KnapsackInstance(values=(10.0,), weights=(6,), capacity=5)
        value, taken = solve_knapsack_via_hap(inst)
        assert value == 0.0 and taken == []

    def test_classic_instance(self):
        inst = KnapsackInstance(
            values=(60.0, 100.0, 120.0), weights=(10, 20, 30), capacity=50
        )
        value, taken = solve_knapsack_via_hap(inst)
        assert value == 220.0
        assert taken == [1, 2]

    def test_empty(self):
        value, taken = solve_knapsack_via_hap(
            KnapsackInstance(values=(), weights=(), capacity=5)
        )
        assert value == 0.0 and taken == []

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_dp_oracle_random(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        values = tuple(float(v) for v in rng.integers(1, 30, size=n))
        weights = tuple(int(w) for w in rng.integers(1, 10, size=n))
        capacity = int(rng.integers(1, 25))
        inst = KnapsackInstance(values=values, weights=weights, capacity=capacity)
        got, taken = solve_knapsack_via_hap(inst)
        assert got == pytest.approx(knapsack_dp(values, weights, capacity))
        # the returned set must itself be legal and achieve the value
        assert sum(weights[i] for i in taken) <= capacity
        assert sum(values[i] for i in taken) == pytest.approx(got)

    def test_matches_exhaustive_small(self):
        values, weights, capacity = (7.0, 2.0, 9.0, 4.0), (3, 1, 4, 2), 6
        best = 0.0
        for mask in itertools.product([0, 1], repeat=4):
            w = sum(m * wt for m, wt in zip(mask, weights))
            if w <= capacity:
                best = max(best, sum(m * v for m, v in zip(mask, values)))
        inst = KnapsackInstance(values=values, weights=weights, capacity=capacity)
        got, _ = solve_knapsack_via_hap(inst)
        assert got == pytest.approx(best)
