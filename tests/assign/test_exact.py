"""Unit tests for the exact solvers (branch-and-bound and brute force)."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.assign.exact import brute_force_assign, exact_assign
from repro.errors import InfeasibleError, ReproError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag, random_tree


class TestAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_bb_matches_brute_force(self, seed):
        dfg = random_dag(8, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 3, floor + 9):
            bb = exact_assign(dfg, table, deadline)
            bb.verify(dfg, table)
            bf = brute_force_assign(dfg, table, deadline)
            assert bb.cost == pytest.approx(bf.cost)

    def test_bb_matches_tree_dp(self):
        from repro.assign.tree_assign import tree_assign

        for seed in range(5):
            tree = random_tree(8, seed=seed)
            table = random_table(tree, num_types=3, seed=seed)
            floor = min_completion_time(tree, table)
            for deadline in (floor, floor + 6):
                assert exact_assign(tree, table, deadline).cost == pytest.approx(
                    tree_assign(tree, table, deadline).cost
                )


class TestGuards:
    def test_brute_force_size_cap(self):
        dfg = random_dag(13, seed=0)
        table = random_table(dfg, seed=0)
        with pytest.raises(ReproError, match="max_nodes"):
            brute_force_assign(dfg, table, 100, max_nodes=12)

    def test_bb_node_budget_returns_incumbent(self, wide_dag):
        """Exhausting the budget keeps the best-so-far, flagged anytime."""
        from repro.assign.greedy import greedy_assign

        table = random_table(wide_dag, seed=1)
        floor = min_completion_time(wide_dag, table)
        result = exact_assign(wide_dag, table, floor + 5, node_budget=2)
        result.verify(wide_dag, table)
        assert result.optimal is False
        # never worse than the greedy seed it started from
        greedy = greedy_assign(wide_dag, table, floor + 5)
        assert result.cost <= greedy.cost + 1e-9

    def test_bb_mid_search_budget_keeps_improvements(self, wide_dag):
        """A budget that exhausts mid-search still returns a feasible,
        verified incumbent no worse than with a smaller budget."""
        table = random_table(wide_dag, seed=4)
        floor = min_completion_time(wide_dag, table)
        deadline = floor + 5
        full = exact_assign(wide_dag, table, deadline)
        assert full.optimal is True
        prev_cost = None
        for budget in (2, 50, 500):
            partial = exact_assign(
                wide_dag, table, deadline, node_budget=budget
            )
            partial.verify(wide_dag, table)
            assert partial.cost >= full.cost - 1e-9
            if prev_cost is not None:
                assert partial.cost <= prev_cost + 1e-9
            prev_cost = partial.cost

    def test_full_search_is_certified(self, wide_dag):
        table = random_table(wide_dag, seed=1)
        floor = min_completion_time(wide_dag, table)
        assert exact_assign(wide_dag, table, floor + 5).optimal is True

    def test_infeasible(self, wide_dag):
        table = random_table(wide_dag, seed=2)
        floor = min_completion_time(wide_dag, table)
        with pytest.raises(InfeasibleError):
            exact_assign(wide_dag, table, floor - 1)
        with pytest.raises(InfeasibleError):
            brute_force_assign(wide_dag, table, floor - 1)


class TestScale:
    def test_bb_handles_benchmark_scale(self):
        """The ILP stand-in must solve the paper's medium graphs."""
        from repro.suite.registry import get_benchmark

        dfg = get_benchmark("diffeq").dag()
        table = random_table(dfg, num_types=3, seed=24)
        floor = min_completion_time(dfg, table)
        result = exact_assign(dfg, table, floor + 4)
        result.verify(dfg, table)

    def test_exact_at_floor_is_fastest_cost_or_better(self, wide_dag):
        from repro.assign.assignment import Assignment

        table = random_table(wide_dag, seed=3)
        floor = min_completion_time(wide_dag, table)
        result = exact_assign(wide_dag, table, floor)
        fastest = Assignment.fastest(wide_dag, table)
        assert result.cost <= fastest.total_cost(wide_dag, table) + 1e-9
