"""Unit tests for the greedy baseline."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.exact import brute_force_assign
from repro.assign.greedy import greedy_assign
from repro.errors import InfeasibleError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(10))
    def test_feasible_whenever_possible(self, seed):
        dfg = random_dag(10, edge_prob=0.25, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 1, floor + 5, floor + 30):
            result = greedy_assign(dfg, table, deadline)
            result.verify(dfg, table)
            assert result.completion_time <= deadline

    def test_infeasible_raises_with_floor(self, wide_dag):
        table = random_table(wide_dag, seed=0)
        floor = min_completion_time(wide_dag, table)
        with pytest.raises(InfeasibleError) as exc:
            greedy_assign(wide_dag, table, floor - 1)
        assert exc.value.min_feasible == floor


class TestBehaviour:
    def test_loose_deadline_keeps_cheapest(self, wide_dag):
        table = random_table(wide_dag, seed=1)
        result = greedy_assign(wide_dag, table, 10_000)
        cheapest = Assignment.cheapest(wide_dag, table)
        assert result.cost == pytest.approx(
            cheapest.total_cost(wide_dag, table)
        )

    def test_never_beats_optimum(self):
        for seed in range(6):
            dfg = random_dag(8, edge_prob=0.3, seed=seed)
            table = random_table(dfg, num_types=3, seed=seed)
            floor = min_completion_time(dfg, table)
            for deadline in (floor, floor + 5):
                greedy = greedy_assign(dfg, table, deadline)
                opt = brute_force_assign(dfg, table, deadline)
                assert greedy.cost >= opt.cost - 1e-9

    def test_suboptimal_instance_exists(self):
        """Greedy must be genuinely weaker than the DP somewhere
        (otherwise the paper's comparison would be vacuous)."""
        from repro.assign.dfg_assign import dfg_assign_repeat
        from repro.suite.registry import get_benchmark

        found_gap = False
        for name in ("lattice4", "elliptic", "rls_laguerre"):
            dfg = get_benchmark(name).dag()
            table = random_table(dfg, num_types=3, seed=24)
            floor = min_completion_time(dfg, table)
            for deadline in range(floor, floor + 12):
                g = greedy_assign(dfg, table, deadline)
                r = dfg_assign_repeat(dfg, table, deadline)
                if g.cost > r.cost + 1e-9:
                    found_gap = True
        assert found_gap

    def test_single_node(self):
        from repro.graph.dfg import DFG

        dfg = DFG()
        dfg.add_node("x")
        table = random_table(dfg, seed=2)
        result = greedy_assign(dfg, table, table.min_time("x"))
        result.verify(dfg, table)

    def test_deterministic(self, wide_dag):
        table = random_table(wide_dag, seed=3)
        floor = min_completion_time(wide_dag, table)
        a = greedy_assign(wide_dag, table, floor + 2)
        b = greedy_assign(wide_dag, table, floor + 2)
        assert dict(a.assignment.items()) == dict(b.assignment.items())

    def test_cost_non_increasing_in_deadline(self, wide_dag):
        table = random_table(wide_dag, seed=4)
        floor = min_completion_time(wide_dag, table)
        costs = [
            greedy_assign(wide_dag, table, L).cost
            for L in range(floor, floor + 15)
        ]
        # greedy is not guaranteed monotone, but must trend down overall
        assert costs[-1] <= costs[0]
