"""Unit tests for the vectorized DP kernel."""

import numpy as np
import pytest

from repro.assign.dpkernel import (
    NO_CHOICE,
    combine_children,
    first_feasible_budget,
    infeasible_curve,
    node_step,
    zero_curve,
)
from repro.errors import TableError


class TestCurves:
    def test_zero_curve(self):
        c = zero_curve(5)
        assert c.shape == (6,)
        assert (c == 0).all()

    def test_infeasible_curve(self):
        c = infeasible_curve(3)
        assert np.isinf(c).all()

    def test_negative_deadline(self):
        with pytest.raises(TableError):
            zero_curve(-1)
        with pytest.raises(TableError):
            infeasible_curve(-1)


class TestNodeStep:
    def test_leaf_node(self):
        curve, choice = node_step(zero_curve(5), [2, 4], [10.0, 3.0])
        # budget < 2: infeasible; 2..3: only type 0; >= 4: type 1 cheaper
        assert np.isinf(curve[0]) and np.isinf(curve[1])
        assert curve[2] == 10.0 and choice[2] == 0
        assert curve[3] == 10.0 and choice[3] == 0
        assert curve[4] == 3.0 and choice[4] == 1
        assert choice[0] == NO_CHOICE

    def test_stacks_on_child_curve(self):
        child, _ = node_step(zero_curve(6), [2, 4], [10.0, 3.0])
        curve, choice = node_step(child, [1, 2], [5.0, 1.0])
        # budget 3: child in 2 (10) + self t=1 c=5 -> 15
        assert curve[3] == 15.0 and choice[3] == 0
        # budget 6: child in 4 (3) + self t=2 c=1 -> 4
        assert curve[6] == 4.0 and choice[6] == 1

    def test_non_increasing(self):
        curve, _ = node_step(zero_curve(10), [3, 7], [8.0, 2.0])
        finite = curve[np.isfinite(curve)]
        assert (np.diff(finite) <= 0).all()

    def test_tie_breaks_to_lowest_index(self):
        curve, choice = node_step(zero_curve(4), [1, 1], [5.0, 5.0])
        assert choice[1] == 0

    def test_zero_time_option(self):
        curve, choice = node_step(zero_curve(3), [0, 2], [7.0, 1.0])
        assert curve[0] == 7.0 and choice[0] == 0
        assert curve[2] == 1.0

    def test_times_beyond_deadline_infeasible(self):
        curve, choice = node_step(zero_curve(2), [5, 9], [1.0, 1.0])
        assert np.isinf(curve).all()
        assert (choice == NO_CHOICE).all()

    def test_bad_shapes(self):
        with pytest.raises(TableError):
            node_step(zero_curve(2), [1, 2], [1.0])
        with pytest.raises(TableError):
            node_step(zero_curve(2), [], [])

    def test_negative_time(self):
        with pytest.raises(TableError):
            node_step(zero_curve(2), [-1], [1.0])


class TestCombineChildren:
    def test_sum(self):
        a = np.array([1.0, 2.0])
        b = np.array([10.0, 20.0])
        assert (combine_children([a, b]) == [11.0, 22.0]).all()

    def test_inf_propagates(self):
        a = np.array([np.inf, 1.0])
        b = np.array([0.0, 0.0])
        out = combine_children([a, b])
        assert np.isinf(out[0]) and out[1] == 1.0

    def test_does_not_mutate_inputs(self):
        a = np.array([1.0])
        combine_children([a, np.array([2.0])])
        assert a[0] == 1.0

    def test_length_mismatch(self):
        with pytest.raises(TableError):
            combine_children([np.zeros(2), np.zeros(3)])

    def test_empty(self):
        with pytest.raises(TableError):
            combine_children([])


class TestFirstFeasibleBudget:
    def test_finds_minimum(self):
        curve, _ = node_step(zero_curve(8), [3, 6], [9.0, 1.0])
        assert first_feasible_budget(curve) == 3

    def test_fully_infeasible(self):
        assert first_feasible_budget(infeasible_curve(4)) == -1

    def test_zero_budget(self):
        assert first_feasible_budget(zero_curve(3)) == 0
