"""Unit tests for DFG_Assign_Once and DFG_Assign_Repeat."""

import pytest

from repro.assign.dfg_assign import (
    choose_expansion,
    dfg_assign_once,
    dfg_assign_repeat,
    expansion_candidates,
)
from repro.assign.exact import brute_force_assign, exact_assign
from repro.assign.tree_assign import tree_assign
from repro.assign.assignment import min_completion_time
from repro.errors import GraphError, InfeasibleError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag


class TestExpansionChoice:
    def test_candidates_cover_both_directions(self, wide_dag):
        fwd, rev = expansion_candidates(wide_dag)
        assert not fwd.transposed and rev.transposed

    def test_choose_picks_smaller(self, wide_dag):
        fwd, rev = expansion_candidates(wide_dag)
        chosen = choose_expansion(wide_dag)
        assert len(chosen) == min(len(fwd), len(rev))

    def test_tie_prefers_forward(self, small_tree):
        # a tree expands to itself both ways (same size)
        chosen = choose_expansion(small_tree)
        assert not chosen.transposed


class TestFeasibility:
    @pytest.mark.parametrize("algo", [dfg_assign_once, dfg_assign_repeat])
    @pytest.mark.parametrize("seed", range(6))
    def test_always_feasible_random_dags(self, algo, seed):
        dfg = random_dag(10, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 2, floor + 7, floor + 20):
            result = algo(dfg, table, deadline)
            result.verify(dfg, table)
            assert result.completion_time <= deadline

    @pytest.mark.parametrize("algo", [dfg_assign_once, dfg_assign_repeat])
    def test_infeasible_deadline_raises(self, wide_dag, algo):
        table = random_table(wide_dag, seed=1)
        floor = min_completion_time(wide_dag, table)
        with pytest.raises(InfeasibleError):
            algo(wide_dag, table, floor - 1)


class TestOptimalOnTrees:
    @pytest.mark.parametrize("algo", [dfg_assign_once, dfg_assign_repeat])
    def test_tree_input_gives_tree_assign_cost(self, small_tree, algo):
        """Paper: on trees both heuristics return the optimum."""
        table = random_table(small_tree, seed=2)
        floor = min_completion_time(small_tree, table)
        for deadline in range(floor, floor + 10):
            heur = algo(small_tree, table, deadline)
            opt = tree_assign(small_tree, table, deadline)
            assert heur.cost == pytest.approx(opt.cost)

    @pytest.mark.parametrize("algo", [dfg_assign_once, dfg_assign_repeat])
    def test_in_tree_input(self, small_tree, algo):
        in_tree = small_tree.transpose()
        table = random_table(in_tree, seed=3)
        floor = min_completion_time(in_tree, table)
        heur = algo(in_tree, table, floor + 4)
        opt = tree_assign(in_tree, table, floor + 4)
        assert heur.cost == pytest.approx(opt.cost)


class TestQuality:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_below_optimum(self, seed):
        dfg = random_dag(9, edge_prob=0.3, seed=100 + seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 4, floor + 10):
            opt = brute_force_assign(dfg, table, deadline)
            once = dfg_assign_once(dfg, table, deadline)
            repeat = dfg_assign_repeat(dfg, table, deadline)
            assert once.cost >= opt.cost - 1e-9
            assert repeat.cost >= opt.cost - 1e-9

    def test_repeat_beats_or_ties_once_on_benchmarks(self):
        """The paper's empirical claim, checked across seeds."""
        from repro.suite.registry import get_benchmark

        for name in ("elliptic", "rls_laguerre"):
            dfg = get_benchmark(name).dag()
            for seed in range(5):
                table = random_table(dfg, num_types=3, seed=seed)
                floor = min_completion_time(dfg, table)
                for deadline in (floor + 2, floor + 6):
                    once = dfg_assign_once(dfg, table, deadline)
                    repeat = dfg_assign_repeat(dfg, table, deadline)
                    assert repeat.cost <= once.cost + 1e-9


class TestRepeatMechanics:
    def test_custom_fix_order(self, wide_dag):
        table = random_table(wide_dag, seed=4)
        floor = min_completion_time(wide_dag, table)
        expansion = choose_expansion(wide_dag)
        dup = expansion.duplicated_originals()
        if dup:
            result = dfg_assign_repeat(
                wide_dag, table, floor + 5, fix_order=list(reversed(dup))
            )
            result.verify(wide_dag, table)

    def test_unknown_fix_order_node(self, wide_dag):
        table = random_table(wide_dag, seed=5)
        floor = min_completion_time(wide_dag, table)
        with pytest.raises(GraphError):
            dfg_assign_repeat(wide_dag, table, floor + 5, fix_order=["zzz"])

    def test_empty_fix_order_is_once_like(self, wide_dag):
        """With nothing pinned, Repeat's resolution equals Once's."""
        table = random_table(wide_dag, seed=6)
        floor = min_completion_time(wide_dag, table)
        expansion = choose_expansion(wide_dag)
        r = dfg_assign_repeat(
            wide_dag, table, floor + 5, expansion=expansion, fix_order=[]
        )
        o = dfg_assign_once(wide_dag, table, floor + 5, expansion=expansion)
        assert r.cost == pytest.approx(o.cost)


class TestMetadata:
    def test_algorithm_names(self, wide_dag):
        table = random_table(wide_dag, seed=7)
        floor = min_completion_time(wide_dag, table)
        assert dfg_assign_once(wide_dag, table, floor).algorithm == "dfg_assign_once"
        assert (
            dfg_assign_repeat(wide_dag, table, floor).algorithm
            == "dfg_assign_repeat"
        )

    def test_deterministic(self, wide_dag):
        table = random_table(wide_dag, seed=8)
        floor = min_completion_time(wide_dag, table)
        a = dfg_assign_repeat(wide_dag, table, floor + 3)
        b = dfg_assign_repeat(wide_dag, table, floor + 3)
        assert dict(a.assignment.items()) == dict(b.assignment.items())
