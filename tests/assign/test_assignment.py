"""Unit tests for the Assignment type and evaluation."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.errors import TableError
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG


@pytest.fixture
def table():
    return TimeCostTable.from_rows(
        {
            "a": ([1, 3], [10.0, 2.0]),
            "b": ([2, 4], [12.0, 3.0]),
            "c": ([1, 2], [9.0, 1.0]),
        }
    )


@pytest.fixture
def graph():
    return DFG.from_edges([("a", "b"), ("b", "c")])


class TestConstruction:
    def test_of_copies(self):
        src = {"a": 0}
        a = Assignment.of(src)
        src["a"] = 1
        assert a["a"] == 0

    def test_uniform(self, graph):
        a = Assignment.uniform(graph, 1)
        assert all(a[n] == 1 for n in graph.nodes())

    def test_cheapest(self, graph, table):
        a = Assignment.cheapest(graph, table)
        assert all(a[n] == 1 for n in graph.nodes())

    def test_fastest(self, graph, table):
        a = Assignment.fastest(graph, table)
        assert all(a[n] == 0 for n in graph.nodes())

    def test_mapping_interface(self):
        a = Assignment.of({"a": 0, "b": 1})
        assert len(a) == 2
        assert "a" in a
        assert set(a) == {"a", "b"}
        assert a.get("zzz") is None
        assert dict(a.items()) == {"a": 0, "b": 1}

    def test_merged_with(self):
        a = Assignment.of({"a": 0, "b": 0})
        merged = a.merged_with({"b": 1, "c": 2})
        assert merged["a"] == 0 and merged["b"] == 1 and merged["c"] == 2
        assert a["b"] == 0  # original untouched


class TestEvaluation:
    def test_total_cost(self, graph, table):
        a = Assignment.of({"a": 0, "b": 1, "c": 0})
        assert a.total_cost(graph, table) == pytest.approx(10.0 + 3.0 + 9.0)

    def test_completion_time_chain(self, graph, table):
        a = Assignment.of({"a": 0, "b": 1, "c": 0})
        assert a.completion_time(graph, table) == 1 + 4 + 1

    def test_completion_time_parallel(self, table):
        g = DFG.from_edges([("a", "c"), ("b", "c")])
        t = TimeCostTable.from_rows(
            {
                "a": ([1, 3], [1.0, 1.0]),
                "b": ([2, 4], [1.0, 1.0]),
                "c": ([1, 2], [1.0, 1.0]),
            }
        )
        a = Assignment.of({"a": 1, "b": 0, "c": 0})
        # critical path is max(3, 2) + 1
        assert a.completion_time(g, t) == 4

    def test_is_feasible(self, graph, table):
        a = Assignment.fastest(graph, table)
        assert a.is_feasible(graph, table, 4)
        assert not a.is_feasible(graph, table, 3)

    def test_execution_times(self, graph, table):
        a = Assignment.of({"a": 1, "b": 0, "c": 1})
        assert a.execution_times(graph, table) == {"a": 3, "b": 2, "c": 2}


class TestValidation:
    def test_missing_node(self, graph, table):
        a = Assignment.of({"a": 0})
        with pytest.raises(TableError):
            a.validate_for(graph, table)

    def test_bad_type_index(self, graph, table):
        a = Assignment.of({"a": 0, "b": 5, "c": 0})
        with pytest.raises(TableError):
            a.validate_for(graph, table)


class TestMinCompletionTime:
    def test_equals_fastest_assignment(self, graph, table):
        fastest = Assignment.fastest(graph, table)
        assert min_completion_time(graph, table) == fastest.completion_time(
            graph, table
        )

    def test_chain_value(self, graph, table):
        assert min_completion_time(graph, table) == 4
