"""Unit tests for the incremental tree-DP engine."""

import numpy as np
import pytest

from repro.assign.dfg_assign import dfg_assign_repeat
from repro.assign.incremental import DPStats, IncrementalTreeDP
from repro.assign.tree_assign import tree_assign, tree_cost_curve, tree_dp
from repro.errors import InfeasibleError, NotATreeError, TableError
from repro.fu.random_tables import random_table
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.suite.registry import get_benchmark


def make_table(dfg, seed=0, num_types=3):
    return random_table(dfg, num_types=num_types, seed=seed)

@pytest.fixture
def tree() -> DFG:
    """Out-tree r → x, r → y, y → z."""
    return DFG.from_edges([("r", "x"), ("r", "y"), ("y", "z")], name="t")


@pytest.fixture
def table(tree) -> TimeCostTable:
    return make_table(tree, seed=3)


class TestRefreshCaching:
    def test_first_refresh_computes_everything(self, tree, table):
        dp = IncrementalTreeDP(tree, 20)
        dp.refresh(table)
        assert dp.stats.nodes_recomputed == 4
        assert dp.stats.cache_hits == 0

    def test_same_table_is_all_hits(self, tree, table):
        dp = IncrementalTreeDP(tree, 20)
        dp.refresh(table).refresh(table)
        assert dp.stats.nodes_recomputed == 4
        assert dp.stats.cache_hits == 4

    def test_pin_recomputes_only_the_root_path(self, tree, table):
        dp = IncrementalTreeDP(tree, 20)
        dp.refresh(table)
        dp.refresh(table.with_fixed("z", 0))
        # z, y, r change; x is untouched and served from cache.
        assert dp.stats.nodes_recomputed == 4 + 3
        assert dp.stats.cache_hits == 1

    def test_rederived_table_hits_the_cache(self, tree, table):
        # with_fixed version tokens are content-stable: deriving the
        # same pin twice (as a deadline sweep does) reuses every curve.
        dp = IncrementalTreeDP(tree, 20)
        dp.refresh(table)
        dp.refresh(table.with_fixed("z", 1))
        recomputed = dp.stats.nodes_recomputed
        dp.refresh(table)                    # revert: all cached
        dp.refresh(table.with_fixed("z", 1))  # re-derive: all cached
        assert dp.stats.nodes_recomputed == recomputed

    def test_different_pin_is_a_different_state(self, tree, table):
        dp = IncrementalTreeDP(tree, 20)
        dp.refresh(table)
        dp.refresh(table.with_fixed("z", 0))
        before = dp.stats.nodes_recomputed
        dp.refresh(table.with_fixed("z", 1))
        assert dp.stats.nodes_recomputed == before + 3

    def test_clear_cache_forces_recompute(self, tree, table):
        dp = IncrementalTreeDP(tree, 20)
        dp.refresh(table)
        assert dp.cache_entries() == 4
        dp.clear_cache()
        assert dp.cache_entries() == 0
        dp.refresh(table)
        assert dp.stats.nodes_recomputed == 8

    def test_curves_match_tree_cost_curve(self, tree, table):
        dp = IncrementalTreeDP(tree, 25).refresh(table)
        np.testing.assert_array_equal(
            dp.total_curve(), tree_cost_curve(tree, table, 25)
        )


class TestTraceback:
    def test_matches_tree_assign_at_every_budget(self):
        dfg = get_benchmark("lattice4").dag()
        table = random_table(dfg, num_types=3, seed=0)
        dp = tree_dp(dfg, table, 60)
        floor = dp.min_feasible()
        for j in range(floor, 61):
            ref = tree_assign(dfg, table, j)
            assert dp.traceback_at(j) == dict(ref.assignment.items())

    def test_result_at_matches_tree_assign(self):
        dfg = get_benchmark("volterra").dag()
        table = random_table(dfg, num_types=3, seed=5)
        dp = tree_dp(dfg, table, 50)
        ref = tree_assign(dfg, table, 44)
        got = dp.result_at(44)
        assert dict(got.assignment.items()) == dict(ref.assignment.items())
        assert got.cost == ref.cost
        assert got.completion_time == ref.completion_time
        got.verify(dfg, table)

    def test_in_forest_is_transposed_like_tree_assign(self):
        dfg = get_benchmark("diffeq").dag()  # an in-forest
        table = random_table(dfg, num_types=3, seed=2)
        dp = tree_dp(dfg, table, 30)
        ref = tree_assign(dfg, table, 30)
        assert dp.traceback_at(30) == dict(ref.assignment.items())

    def test_infeasible_budget_raises_with_floor(self, tree, table):
        dp = IncrementalTreeDP(tree, 40).refresh(table)
        floor = dp.min_feasible()
        with pytest.raises(InfeasibleError) as exc:
            dp.traceback_at(floor - 1)
        assert exc.value.min_feasible == floor

    def test_budget_outside_range_raises(self, tree, table):
        dp = IncrementalTreeDP(tree, 10).refresh(table)
        with pytest.raises(InfeasibleError):
            dp.traceback_at(11)
        with pytest.raises(InfeasibleError):
            dp.traceback_at(-1)

    def test_query_before_refresh_raises(self, tree):
        dp = IncrementalTreeDP(tree, 10)
        with pytest.raises(InfeasibleError, match="refresh"):
            dp.traceback_at(5)
        with pytest.raises(InfeasibleError, match="refresh"):
            dp.total_curve()


class TestValidation:
    def test_non_forest_rejected(self, diamond):
        with pytest.raises(NotATreeError):
            IncrementalTreeDP(diamond, 10)

    def test_negative_deadline_rejected(self, tree):
        with pytest.raises(InfeasibleError):
            IncrementalTreeDP(tree, -1)

    def test_missing_row_raises_table_error(self, tree, table):
        incomplete = TimeCostTable(3)
        incomplete.set_row("r", [1, 2, 3], [3.0, 2.0, 1.0])
        dp = IncrementalTreeDP(tree, 10)
        with pytest.raises(TableError, match="no table row"):
            dp.refresh(incomplete)


class TestEmptyForest:
    def test_refresh_and_traceback(self):
        dp = IncrementalTreeDP(DFG(name="empty"), 5).refresh(TimeCostTable(2))
        np.testing.assert_array_equal(dp.total_curve(), np.zeros(6))
        assert dp.traceback_at(0) == {}
        assert dp.result_at(5).cost == 0.0


class TestStats:
    def test_external_stats_accumulate(self, tree, table):
        stats = DPStats()
        IncrementalTreeDP(tree, 20, stats=stats).refresh(table)
        IncrementalTreeDP(tree, 20, stats=stats).refresh(table)
        assert stats.refreshes == 2
        assert stats.nodes_visited == 8

    def test_addition_and_hit_rate(self):
        a = DPStats(refreshes=1, nodes_visited=4, nodes_recomputed=4)
        b = DPStats(refreshes=2, nodes_visited=8, cache_hits=8, tracebacks=3)
        total = a + b
        assert total.refreshes == 3
        assert total.nodes_visited == 12
        assert total.hit_rate == pytest.approx(8 / 12)
        assert DPStats().hit_rate == 0.0

    def test_repeat_collects_stats(self, wide_dag):
        table = make_table(wide_dag, seed=1)
        from repro.assign.assignment import min_completion_time

        stats = DPStats()
        deadline = min_completion_time(wide_dag, table) + 4
        dfg_assign_repeat(wide_dag, table, deadline, stats=stats)
        assert stats.refreshes >= 1
        assert stats.tracebacks == stats.refreshes
