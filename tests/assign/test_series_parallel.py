"""Unit tests for the series-parallel exact DP (Li et al. [13])."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.assign.exact import brute_force_assign
from repro.assign.path_assign import path_assign
from repro.assign.series_parallel import (
    NotSeriesParallelError,
    is_two_terminal_sp,
    sp_assign,
)
from repro.errors import InfeasibleError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG


def diamond():
    return DFG.from_edges(
        [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")], name="diamond_st"
    )


def nested():
    """s → (a → (c ‖ d) → e) ‖ b → t: series and parallel nesting."""
    return DFG.from_edges(
        [
            ("s", "a"), ("a", "c"), ("a", "d"), ("c", "e"), ("d", "e"),
            ("e", "t"), ("s", "b"), ("b", "t"),
        ],
        name="nested_sp",
    )


def wheatstone():
    return DFG.from_edges(
        [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t"), ("a", "b")],
        name="bridge",
    )


def random_sp(depth, seed):
    """Random two-terminal SP graph via recursive construction."""
    import numpy as np

    gen = np.random.default_rng(seed)
    dfg = DFG(name=f"sp{seed}")
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"n{counter[0]}"

    def build(src, dst, d):
        """Populate a sub-network between existing nodes src → dst."""
        if d == 0 or gen.random() < 0.3:
            mid = fresh()
            dfg.add_node(mid)
            dfg.add_edge(src, mid, 0)
            dfg.add_edge(mid, dst, 0)
            return
        if gen.random() < 0.5:  # series: src -> m -> dst, recurse both
            mid = fresh()
            dfg.add_node(mid)
            build(src, mid, d - 1)
            build(mid, dst, d - 1)
        else:  # parallel branches
            for _ in range(int(gen.integers(2, 4))):
                build(src, dst, d - 1)

    dfg.add_node("S")
    dfg.add_node("T")
    build("S", "T", depth)
    return dfg


class TestRecognition:
    def test_accepts_sp_shapes(self):
        assert is_two_terminal_sp(diamond())
        assert is_two_terminal_sp(nested())

    def test_rejects_bridge(self):
        assert not is_two_terminal_sp(wheatstone())

    def test_rejects_multi_terminal(self, wide_dag):
        assert not is_two_terminal_sp(wide_dag)

    def test_single_node_is_sp(self):
        dfg = DFG()
        dfg.add_node("x")
        assert is_two_terminal_sp(dfg)

    def test_chain_is_sp(self, chain3):
        assert is_two_terminal_sp(chain3)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_sp_recognized(self, seed):
        assert is_two_terminal_sp(random_sp(3, seed))


class TestOptimality:
    @pytest.mark.parametrize("builder", [diamond, nested])
    def test_matches_brute_force_fixed(self, builder):
        dfg = builder()
        table = random_table(dfg, num_types=3, seed=7)
        floor = min_completion_time(dfg, table)
        for deadline in range(floor, floor + 8):
            got = sp_assign(dfg, table, deadline)
            got.verify(dfg, table)
            want = brute_force_assign(dfg, table, deadline)
            assert got.cost == pytest.approx(want.cost)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_random(self, seed):
        dfg = random_sp(2, seed)
        if len(dfg) > 11:
            pytest.skip("instance too large for the brute-force oracle")
        table = random_table(dfg, num_types=2, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 3, floor + 7):
            got = sp_assign(dfg, table, deadline)
            got.verify(dfg, table)
            want = brute_force_assign(dfg, table, deadline)
            assert got.cost == pytest.approx(want.cost)

    def test_chain_agrees_with_path_assign(self, chain3, chain3_table):
        for deadline in range(4, 14):
            sp = sp_assign(chain3, chain3_table, deadline)
            pa = path_assign(chain3, chain3_table, deadline)
            assert sp.cost == pytest.approx(pa.cost)

    def test_extends_beyond_trees(self):
        """The whole point: the diamond is NOT a tree/forest, yet SP
        solves it exactly where Tree_Assign refuses."""
        from repro.assign.tree_assign import tree_assign
        from repro.errors import NotATreeError

        dfg = diamond()
        table = random_table(dfg, num_types=3, seed=3)
        deadline = min_completion_time(dfg, table) + 4
        with pytest.raises(NotATreeError):
            tree_assign(dfg, table, deadline)
        result = sp_assign(dfg, table, deadline)
        result.verify(dfg, table)


class TestErrors:
    def test_bridge_raises(self):
        dfg = wheatstone()
        table = random_table(dfg, num_types=2, seed=0)
        with pytest.raises(NotSeriesParallelError):
            sp_assign(dfg, table, 100)

    def test_multi_source_raises(self, wide_dag):
        table = random_table(wide_dag, num_types=2, seed=0)
        with pytest.raises(NotSeriesParallelError, match="sources"):
            sp_assign(wide_dag, table, 100)

    def test_infeasible_deadline(self):
        dfg = diamond()
        table = random_table(dfg, num_types=2, seed=1)
        floor = min_completion_time(dfg, table)
        with pytest.raises(InfeasibleError):
            sp_assign(dfg, table, floor - 1)

    def test_negative_deadline(self):
        dfg = diamond()
        table = random_table(dfg, num_types=2, seed=1)
        with pytest.raises(InfeasibleError):
            sp_assign(dfg, table, -1)


class TestSynthesisIntegration:
    def test_sp_algorithm_name(self):
        from repro.synthesis import synthesize

        dfg = nested()
        table = random_table(dfg, num_types=3, seed=2)
        deadline = min_completion_time(dfg, table) + 3
        result = synthesize(dfg, table, deadline, algorithm="sp")
        result.verify(dfg, table)
        assert result.assign_result.algorithm == "sp_assign"
