"""Unit tests for the metaheuristic portfolio assigner."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.assign.exact import cost_lower_bound, exact_assign
from repro.assign.portfolio import (
    PORTFOLIO_SOLVERS,
    PortfolioResult,
    SolverStats,
    portfolio_assign,
)
from repro.errors import InfeasibleError, ReproError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag

ATOL = 1e-9


def _case(seed, nodes=10, slack=3):
    dfg = random_dag(nodes, edge_prob=0.3, seed=seed)
    table = random_table(dfg, num_types=3, seed=seed)
    deadline = min_completion_time(dfg, table) + slack
    return dfg, table, deadline


class TestNeverWorseThanRepeat:
    @pytest.mark.parametrize("seed", range(6))
    def test_beats_or_ties_repeat(self, seed):
        dfg, table, deadline = _case(seed)
        repeat = dfg_assign_repeat(dfg, table, deadline)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=400, seed=seed
        )
        result.best.verify(dfg, table)
        assert result.best.cost <= repeat.cost + ATOL
        assert result.seed_cost == pytest.approx(repeat.cost)

    def test_matches_certified_optimum_on_small_graph(self):
        dfg, table, deadline = _case(7, nodes=7)
        exact = exact_assign(dfg, table, deadline)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=400, seed=7
        )
        assert result.certified
        assert result.gap == pytest.approx(0.0, abs=ATOL)
        assert result.best.cost == pytest.approx(exact.cost)


class TestAnytimeContract:
    def test_tiny_budget_still_feasible(self):
        dfg, table, deadline = _case(3)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=1, seed=3
        )
        result.best.verify(dfg, table)
        assert result.best.cost <= result.seed_cost + ATOL

    def test_gap_never_negative_and_bounded_by_floor(self):
        dfg, table, deadline = _case(5)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=300, seed=5
        )
        assert result.gap >= 0.0
        floor = cost_lower_bound(dfg, table, deadline)
        assert result.best.cost >= floor - ATOL
        assert result.lower_bound >= floor - ATOL

    def test_winner_optimal_flag_matches_certification(self):
        dfg, table, deadline = _case(2, nodes=7)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=300, seed=2
        )
        if result.certified:
            assert result.best.optimal is True
        else:
            assert result.best.optimal is None


class TestDeterminism:
    def test_same_seed_same_result(self):
        dfg, table, deadline = _case(4)
        a = portfolio_assign(dfg, table, deadline, evaluations=300, seed=4)
        b = portfolio_assign(dfg, table, deadline, evaluations=300, seed=4)
        assert a == b
        assert a.best.assignment.mapping == b.best.assignment.mapping

    def test_worker_count_does_not_change_result(self):
        dfg, table, deadline = _case(6)
        serial = portfolio_assign(
            dfg, table, deadline, evaluations=200, seed=6, workers=0
        )
        fanned = portfolio_assign(
            dfg, table, deadline, evaluations=200, seed=6, workers=2
        )
        assert serial == fanned


class TestSolverSelection:
    def test_unknown_solver_rejected(self):
        dfg, table, deadline = _case(1)
        with pytest.raises(ReproError, match="unknown portfolio solver"):
            portfolio_assign(dfg, table, deadline, solvers=["tabu"])

    @pytest.mark.parametrize("name", PORTFOLIO_SOLVERS)
    def test_each_solver_alone_is_feasible(self, name):
        dfg, table, deadline = _case(8)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=150, seed=8, solvers=[name]
        )
        result.best.verify(dfg, table)
        assert {s.name for s in result.solvers} == {name}

    def test_stats_cover_all_default_solvers(self):
        dfg, table, deadline = _case(9)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=200, seed=9
        )
        assert {s.name for s in result.solvers} == set(PORTFOLIO_SOLVERS)
        assert all(isinstance(s, SolverStats) for s in result.solvers)
        assert result.evaluations <= 200 + len(PORTFOLIO_SOLVERS)

    def test_winner_is_reported_in_algorithm_tag(self):
        dfg, table, deadline = _case(0)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=200, seed=0
        )
        assert result.best.algorithm == f"portfolio[{result.winner}]"


class TestValidation:
    def test_infeasible_deadline_raises(self):
        dfg, table, _ = _case(1)
        with pytest.raises(InfeasibleError):
            portfolio_assign(
                dfg, table, min_completion_time(dfg, table) - 1
            )

    def test_describe_is_readable(self):
        dfg, table, deadline = _case(2)
        result = portfolio_assign(
            dfg, table, deadline, evaluations=100, seed=2
        )
        text = result.describe()
        assert "portfolio: best cost" in text
        assert "optimality gap" in text
        assert isinstance(result, PortfolioResult)
