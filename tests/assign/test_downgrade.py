"""Unit tests for the downgrade (all-fastest-then-relax) baseline."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.downgrade import downgrade_assign
from repro.assign.exact import brute_force_assign
from repro.errors import InfeasibleError
from repro.fu.random_tables import random_table
from repro.suite.synthetic import random_dag


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_feasible(self, seed):
        dfg = random_dag(10, edge_prob=0.25, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 4, floor + 20):
            result = downgrade_assign(dfg, table, deadline)
            result.verify(dfg, table)
            assert result.completion_time <= deadline

    def test_infeasible_raises(self, wide_dag):
        table = random_table(wide_dag, seed=0)
        floor = min_completion_time(wide_dag, table)
        with pytest.raises(InfeasibleError):
            downgrade_assign(wide_dag, table, floor - 1)


class TestQuality:
    def test_never_beats_optimum(self):
        for seed in range(5):
            dfg = random_dag(8, edge_prob=0.3, seed=seed)
            table = random_table(dfg, num_types=3, seed=seed)
            floor = min_completion_time(dfg, table)
            for deadline in (floor, floor + 5):
                down = downgrade_assign(dfg, table, deadline)
                opt = brute_force_assign(dfg, table, deadline)
                assert down.cost >= opt.cost - 1e-9

    def test_loose_deadline_reaches_cheapest(self, wide_dag):
        table = random_table(wide_dag, seed=1)
        result = downgrade_assign(wide_dag, table, 10_000)
        assert result.cost == pytest.approx(
            sum(table.min_cost(n) for n in wide_dag.nodes())
        )

    def test_at_floor_never_worse_than_all_fastest(self, wide_dag):
        table = random_table(wide_dag, seed=2)
        floor = min_completion_time(wide_dag, table)
        result = downgrade_assign(wide_dag, table, floor)
        fastest = Assignment.fastest(wide_dag, table)
        assert result.cost <= fastest.total_cost(wide_dag, table) + 1e-9

    def test_differs_from_upgrade_greedy_somewhere(self):
        """The two greedy directions are genuinely different heuristics."""
        from repro.assign.greedy import greedy_assign

        different = False
        for seed in range(10):
            dfg = random_dag(10, edge_prob=0.3, seed=seed)
            table = random_table(dfg, num_types=3, seed=seed)
            floor = min_completion_time(dfg, table)
            for deadline in (floor + 1, floor + 3):
                up = greedy_assign(dfg, table, deadline)
                down = downgrade_assign(dfg, table, deadline)
                if abs(up.cost - down.cost) > 1e-9:
                    different = True
        assert different

    def test_deterministic(self, wide_dag):
        table = random_table(wide_dag, seed=3)
        floor = min_completion_time(wide_dag, table)
        a = downgrade_assign(wide_dag, table, floor + 2)
        b = downgrade_assign(wide_dag, table, floor + 2)
        assert dict(a.assignment.items()) == dict(b.assignment.items())
