"""Unit tests for the min-max (peak-cost) assignment variant."""

import itertools

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.minmax import max_cost, tree_minmax_assign
from repro.errors import InfeasibleError, NotATreeError
from repro.fu.random_tables import random_table
from repro.graph.paths import longest_path_time
from repro.suite.synthetic import random_tree


def brute_force_minmax(dfg, table, deadline):
    """Exhaustive oracle for the peak-cost objective."""
    nodes = dfg.nodes()
    best = float("inf")
    for combo in itertools.product(range(table.num_types), repeat=len(nodes)):
        mapping = dict(zip(nodes, combo))
        times = {n: table.time(n, mapping[n]) for n in nodes}
        if longest_path_time(dfg, times) > deadline:
            continue
        peak = max(table.cost(n, mapping[n]) for n in nodes)
        best = min(best, peak)
    return best


class TestOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        tree = random_tree(7, seed=seed)
        table = random_table(tree, num_types=3, seed=seed)
        floor = min_completion_time(tree, table)
        for deadline in (floor, floor + 3, floor + 8):
            result = tree_minmax_assign(tree, table, deadline)
            result.verify(tree, table)
            assert result.peak_cost == pytest.approx(
                brute_force_minmax(tree, table, deadline)
            )

    def test_in_tree_handled(self, small_tree):
        in_tree = small_tree.transpose()
        table = random_table(in_tree, seed=1)
        floor = min_completion_time(in_tree, table)
        result = tree_minmax_assign(in_tree, table, floor + 3)
        result.verify(in_tree, table)

    def test_loose_deadline_minimizes_global_peak(self, small_tree):
        table = random_table(small_tree, seed=2)
        result = tree_minmax_assign(small_tree, table, 10_000)
        # with infinite slack every node takes its cheapest option, so
        # the peak is the max over per-node minima
        expected = max(table.min_cost(n) for n in small_tree.nodes())
        assert result.peak_cost == pytest.approx(expected)


class TestObjectiveDiffersFromSum:
    def test_minmax_and_minsum_disagree_somewhere(self):
        """The two objectives must pick different assignments on some
        instance — otherwise the variant would be vacuous."""
        from repro.assign.tree_assign import tree_assign

        found = False
        for seed in range(12):
            tree = random_tree(7, seed=seed)
            table = random_table(tree, num_types=3, seed=seed)
            floor = min_completion_time(tree, table)
            for deadline in (floor + 1, floor + 4):
                mm = tree_minmax_assign(tree, table, deadline)
                ms = tree_assign(tree, table, deadline)
                peak_of_sum_opt = max_cost(tree, table, ms.assignment)
                if mm.peak_cost < peak_of_sum_opt - 1e-9:
                    found = True
        assert found

    def test_minmax_peak_never_above_sum_optimum_peak(self):
        from repro.assign.tree_assign import tree_assign

        for seed in range(6):
            tree = random_tree(6, seed=seed)
            table = random_table(tree, num_types=3, seed=seed)
            deadline = min_completion_time(tree, table) + 3
            mm = tree_minmax_assign(tree, table, deadline)
            ms = tree_assign(tree, table, deadline)
            assert mm.peak_cost <= max_cost(tree, table, ms.assignment) + 1e-9


class TestErrors:
    def test_rejects_dags(self, wide_dag):
        table = random_table(wide_dag, seed=0)
        with pytest.raises(NotATreeError):
            tree_minmax_assign(wide_dag, table, 100)

    def test_infeasible(self, small_tree):
        table = random_table(small_tree, seed=3)
        floor = min_completion_time(small_tree, table)
        with pytest.raises(InfeasibleError):
            tree_minmax_assign(small_tree, table, floor - 1)

    def test_verify_catches_bad_peak(self, small_tree):
        from repro.assign.minmax import MinMaxResult

        table = random_table(small_tree, seed=4)
        good = tree_minmax_assign(small_tree, table, 10_000)
        forged = MinMaxResult(
            assignment=good.assignment,
            peak_cost=good.peak_cost / 2,
            completion_time=good.completion_time,
            deadline=good.deadline,
        )
        with pytest.raises(InfeasibleError):
            forged.verify(small_tree, table)


class TestMaxCost:
    def test_empty_graph(self):
        from repro.graph.dfg import DFG
        from repro.fu.table import TimeCostTable

        assert max_cost(DFG(), TimeCostTable(1), Assignment.of({})) == 0.0
