"""Auto-generated checkkit reproducer (see docs/testing.md)."""

from repro.checkkit.shrink import replay_json

REPRODUCER = r'''
{
  "checkkit_reproducer": 1,
  "deadline": 13,
  "edges": [
    [
      "v0",
      "v1",
      0
    ],
    [
      "v1",
      "v2",
      0
    ],
    [
      "v1",
      "v0",
      1
    ],
    [
      "v2",
      "v4",
      0
    ],
    [
      "v3",
      "v6",
      0
    ],
    [
      "v4",
      "v6",
      0
    ],
    [
      "v5",
      "v6",
      0
    ],
    [
      "v5",
      "v2",
      1
    ],
    [
      "v6",
      "v5",
      2
    ]
  ],
  "message": "example artifact (healthy instance; documents the format)",
  "nodes": [
    [
      "v0",
      "add"
    ],
    [
      "v1",
      "add"
    ],
    [
      "v2",
      "cmp"
    ],
    [
      "v3",
      "add"
    ],
    [
      "v4",
      "mul"
    ],
    [
      "v5",
      "cmp"
    ],
    [
      "v6",
      "cmp"
    ]
  ],
  "oracles": [
    "portfolio",
    "ordering",
    "schedulers"
  ],
  "relations": [
    "cost_scaling",
    "retiming"
  ],
  "rows": {
    "v0": {
      "costs": [
        4.0,
        3.0,
        1.0
      ],
      "times": [
        2,
        5,
        7
      ]
    },
    "v1": {
      "costs": [
        18.0,
        14.0,
        7.0
      ],
      "times": [
        2,
        3,
        5
      ]
    },
    "v2": {
      "costs": [
        15.0,
        12.0,
        6.0
      ],
      "times": [
        2,
        5,
        6
      ]
    },
    "v3": {
      "costs": [
        24.0,
        15.0,
        7.0
      ],
      "times": [
        3,
        4,
        5
      ]
    },
    "v4": {
      "costs": [
        17.0,
        11.0,
        4.0
      ],
      "times": [
        3,
        5,
        7
      ]
    },
    "v5": {
      "costs": [
        20.0,
        13.0,
        7.0
      ],
      "times": [
        1,
        2,
        3
      ]
    },
    "v6": {
      "costs": [
        13.0,
        12.0,
        4.0
      ],
      "times": [
        2,
        4,
        6
      ]
    }
  },
  "seed": 2004,
  "spec": "delay_cycle"
}
'''

def test_example_delay_cycle_2004():
    assert replay_json(REPRODUCER)
