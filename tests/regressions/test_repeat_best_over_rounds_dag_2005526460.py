"""Auto-generated checkkit reproducer (see docs/testing.md)."""

from repro.checkkit.shrink import replay_json

REPRODUCER = r'''
{
  "checkkit_reproducer": 1,
  "deadline": 11,
  "edges": [
    [
      "v0",
      "v2",
      0
    ],
    [
      "v0",
      "v5",
      0
    ],
    [
      "v0",
      "v7",
      0
    ],
    [
      "v2",
      "v5",
      0
    ],
    [
      "v2",
      "v6",
      0
    ],
    [
      "v2",
      "v7",
      0
    ],
    [
      "v5",
      "v6",
      0
    ],
    [
      "v5",
      "v7",
      0
    ]
  ],
  "message": "repeat 60.0 worse than once 58.0 on a shared expansion (fuzz seed 2004, instance #192; fixed by best-over-rounds tracking in dfg_assign_repeat)",
  "nodes": [
    [
      "v0",
      "cmp"
    ],
    [
      "v2",
      "mul"
    ],
    [
      "v5",
      "mul"
    ],
    [
      "v6",
      "mul"
    ],
    [
      "v7",
      "add"
    ]
  ],
  "oracles": [
    "portfolio",
    "ordering",
    "kernels"
  ],
  "relations": [],
  "rows": {
    "v0": {
      "costs": [
        11.0,
        9.0,
        5.0
      ],
      "times": [
        2,
        5,
        8
      ]
    },
    "v2": {
      "costs": [
        9.0,
        5.0,
        2.0
      ],
      "times": [
        3,
        6,
        7
      ]
    },
    "v5": {
      "costs": [
        13.0,
        12.0,
        4.0
      ],
      "times": [
        2,
        4,
        7
      ]
    },
    "v6": {
      "costs": [
        10.0,
        7.0,
        4.0
      ],
      "times": [
        1,
        3,
        5
      ]
    },
    "v7": {
      "costs": [
        18.0,
        9.0,
        5.0
      ],
      "times": [
        2,
        5,
        7
      ]
    }
  },
  "seed": 2005526460,
  "spec": "dag"
}
'''

def test_repeat_never_worse_than_once_dag_2005526460():
    assert replay_json(REPRODUCER)
