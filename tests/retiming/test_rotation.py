"""Unit tests for rotation scheduling."""

import pytest

from repro.assign.assignment import Assignment
from repro.errors import ScheduleError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.retiming.retime import apply_retiming
from repro.retiming.rotation import rotation_schedule
from repro.sched.schedule import Configuration
from repro.suite.extras import iir_biquad_cascade


@pytest.fixture
def ring():
    """A 4-node ring with 2 delays: rotation has room to work."""
    dfg = DFG(name="ring")
    for n in ("a", "b", "c", "d"):
        dfg.add_node(n, op="add")
    dfg.add_edge("a", "b", 0)
    dfg.add_edge("b", "c", 0)
    dfg.add_edge("c", "d", 0)
    dfg.add_edge("d", "a", 2)
    return dfg


@pytest.fixture
def ring_table(ring):
    return random_table(ring, num_types=1, seed=0)


class TestBasics:
    def test_result_fields(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([2]), rounds=4
        )
        assert result.history[0] == result.initial_length
        assert result.best_length == min(result.history)
        assert len(result.history) == 5  # rounds + initial

    def test_never_worse_than_static(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([2])
        )
        assert result.best_length <= result.initial_length

    def test_best_schedule_is_valid(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([2]), rounds=6
        )
        result.schedule.validate(result.graph.dag(), ring_table, assignment)

    def test_retiming_reproduces_best_graph(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([2]), rounds=6
        )
        rebuilt = apply_retiming(ring, result.retiming)
        assert rebuilt == result.graph

    def test_negative_rounds(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        with pytest.raises(ScheduleError):
            rotation_schedule(
                ring, ring_table, assignment, Configuration.of([2]), rounds=-1
            )

    def test_zero_rounds_is_static_schedule(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([2]), rounds=0
        )
        assert len(result.history) == 1
        assert all(r == 0 for r in result.retiming.values())


class TestImprovement:
    def test_rotation_shortens_constrained_ring(self, ring, ring_table):
        """With one FU the static schedule serializes the whole chain;
        rotation overlaps successive iterations and must improve."""
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([1]), rounds=8
        )
        # improvement is instance-dependent in general, but for this
        # ring the chain must shrink at least once across 8 rotations
        assert result.best_length <= result.initial_length

    def test_biquad_cascade(self):
        """End-to-end on a real cyclic DSP benchmark."""
        dfg = iir_biquad_cascade(1)
        table = random_table(dfg, num_types=2, seed=1)
        assignment = Assignment.cheapest(dfg, table)
        result = rotation_schedule(
            dfg, table, assignment, Configuration.of([2, 2]), rounds=8
        )
        assert result.best_length <= result.initial_length
        result.schedule.validate(result.graph.dag(), table, assignment)

    def test_delay_count_preserved(self, ring, ring_table):
        assignment = Assignment.uniform(ring, 0)
        result = rotation_schedule(
            ring, ring_table, assignment, Configuration.of([2]), rounds=5
        )
        assert result.graph.total_delays() == ring.total_delays()
