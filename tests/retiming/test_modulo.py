"""Unit tests for iterative modulo scheduling."""

import pytest

from repro.assign.assignment import Assignment
from repro.errors import ScheduleError
from repro.fu.random_tables import random_table
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.retiming.modulo import modulo_schedule, rec_mii, res_mii
from repro.sched.schedule import Configuration


@pytest.fixture
def ring():
    dfg = DFG(name="ring")
    for n in "abc":
        dfg.add_node(n, op="add")
    dfg.add_edge("a", "b", 0)
    dfg.add_edge("b", "c", 0)
    dfg.add_edge("c", "a", 2)
    return dfg


@pytest.fixture
def ring_table():
    return TimeCostTable.from_rows({n: ([2], [1.0]) for n in "abc"})


@pytest.fixture
def uniform(ring):
    return Assignment.uniform(ring, 0)


class TestBounds:
    def test_res_mii_work_over_units(self, ring, ring_table, uniform):
        assert res_mii(ring, ring_table, uniform, Configuration.of([1])) == 6
        assert res_mii(ring, ring_table, uniform, Configuration.of([2])) == 3
        assert res_mii(ring, ring_table, uniform, Configuration.of([6])) == 1

    def test_res_mii_missing_type(self, ring, ring_table, uniform):
        with pytest.raises(ScheduleError):
            res_mii(ring, ring_table, uniform, Configuration.of([0]))

    def test_rec_mii_cycle_ratio(self, ring, ring_table, uniform):
        # cycle time 6 over 2 delays -> ceil(3)
        assert rec_mii(ring, ring_table, uniform) == 3

    def test_rec_mii_acyclic_is_one(self, diamond):
        table = TimeCostTable.from_rows(
            {n: ([3], [1.0]) for n in diamond.nodes()}
        )
        assert rec_mii(diamond, table, Assignment.uniform(diamond, 0)) == 1

    def test_rec_mii_tight_loop(self):
        dfg = DFG()
        dfg.add_node("x")
        dfg.add_edge("x", "x", 1)
        table = TimeCostTable.from_rows({"x": ([5], [1.0])})
        assert rec_mii(dfg, table, Assignment.uniform(dfg, 0)) == 5


class TestModuloSchedule:
    def test_achieves_floor_on_ring(self, ring, ring_table, uniform):
        ms = modulo_schedule(ring, ring_table, uniform, Configuration.of([2]))
        assert ms.ii == 3  # == max(ResMII, RecMII): optimal
        ms.validate(ring, ring_table, uniform)

    def test_single_unit_serializes(self, ring, ring_table, uniform):
        ms = modulo_schedule(ring, ring_table, uniform, Configuration.of([1]))
        assert ms.ii == 6
        ms.validate(ring, ring_table, uniform)

    def test_more_units_never_higher_ii(self, ring, ring_table, uniform):
        iis = [
            modulo_schedule(
                ring, ring_table, uniform, Configuration.of([k])
            ).ii
            for k in (1, 2, 3)
        ]
        assert iis == sorted(iis, reverse=True)

    def test_ii_beats_static_schedule_throughput(self):
        """Software pipelining's raison d'être: II ≤ the static
        schedule length (usually strictly less on cyclic graphs)."""
        from repro.sched.min_resource import list_schedule
        from repro.suite.extras import iir_biquad_cascade

        dfg = iir_biquad_cascade(1)
        table = random_table(dfg, num_types=2, seed=0)
        assignment = Assignment.cheapest(dfg, table)
        cfg = Configuration.of([2, 2])
        static = list_schedule(dfg.dag(), table, assignment=assignment, configuration=cfg)
        ms = modulo_schedule(dfg, table, assignment, cfg)
        assert ms.ii <= static.makespan(table)

    def test_acyclic_graph_pipelines_to_res_mii(self, diamond):
        table = TimeCostTable.from_rows(
            {n: ([2], [1.0]) for n in diamond.nodes()}
        )
        assignment = Assignment.uniform(diamond, 0)
        cfg = Configuration.of([2])
        ms = modulo_schedule(diamond, table, assignment, cfg)
        assert ms.ii == res_mii(diamond, table, assignment, cfg) == 4
        ms.validate(diamond, table, assignment)

    def test_max_ii_exceeded(self, ring, ring_table, uniform):
        with pytest.raises(ScheduleError, match="max_ii|raise"):
            modulo_schedule(
                ring, ring_table, uniform, Configuration.of([1]), max_ii=2
            )

    def test_validate_catches_conflicts(self, ring, ring_table, uniform):
        from repro.retiming.modulo import ModuloSchedule

        bad = ModuloSchedule(
            starts={"a": 0, "b": 0, "c": 0},  # everything at once
            ii=2,
            configuration=Configuration.of([1]),
        )
        with pytest.raises(ScheduleError):
            bad.validate(ring, ring_table, uniform)

    @pytest.mark.parametrize("sections", [1, 2])
    def test_biquad_cascades(self, sections):
        from repro.suite.extras import iir_biquad_cascade
        from repro.retiming.modulo import rec_mii as _rec, res_mii as _res

        dfg = iir_biquad_cascade(sections)
        table = random_table(dfg, num_types=2, seed=sections)
        assignment = Assignment.cheapest(dfg, table)
        cfg = Configuration.of([3, 3])
        ms = modulo_schedule(dfg, table, assignment, cfg)
        ms.validate(dfg, table, assignment)
        floor = max(
            _res(dfg, table, assignment, cfg), _rec(dfg, table, assignment)
        )
        assert ms.ii >= floor

    def test_stage_count(self, ring, ring_table, uniform):
        ms = modulo_schedule(ring, ring_table, uniform, Configuration.of([2]))
        times = uniform.execution_times(ring, ring_table)
        assert ms.stage_count(times) >= 1
