"""Unit tests for retiming."""

import pytest

from repro.errors import GraphError
from repro.graph.dfg import DFG
from repro.retiming.retime import (
    apply_retiming,
    cycle_period,
    feasible_retiming,
    min_cycle_period,
)


@pytest.fixture
def correlator():
    """The classic Leiserson–Saxe correlator-like cyclic graph."""
    dfg = DFG(name="correlator")
    # ring: h -> a1 -> a2 -> a3 -> h with delays on the way back
    dfg.add_node("h", op="mul")
    for i in (1, 2, 3):
        dfg.add_node(f"a{i}", op="add")
    dfg.add_edge("h", "a1", 0)
    dfg.add_edge("a1", "a2", 0)
    dfg.add_edge("a2", "a3", 0)
    dfg.add_edge("a3", "h", 3)
    return dfg


TIMES = {"h": 3, "a1": 1, "a2": 1, "a3": 1}


class TestCyclePeriod:
    def test_initial_period(self, correlator):
        assert cycle_period(correlator, TIMES) == 6  # h+a1+a2+a3

    def test_acyclic_graph(self, diamond):
        unit = {n: 1 for n in diamond.nodes()}
        assert cycle_period(diamond, unit) == 3


class TestApplyRetiming:
    def test_identity(self, correlator):
        r0 = {n: 0 for n in correlator.nodes()}
        assert apply_retiming(correlator, r0) == correlator

    def test_moves_delays(self, correlator):
        # push one register from a3->h across h onto h->a1
        r = {"h": 0, "a1": 1, "a2": 1, "a3": 1}
        out = apply_retiming(correlator, r)
        delays = {(u, v): d for u, v, d in out.edges()}
        assert delays[("h", "a1")] == 1
        assert delays[("a1", "a2")] == 0
        assert delays[("a2", "a3")] == 0
        assert delays[("a3", "h")] == 2
        # the critical zero-delay path shrank from 6 to max(h, a1+a2+a3)
        assert cycle_period(out, TIMES) == 3

    def test_illegal_retiming_rejected(self, correlator):
        with pytest.raises(GraphError):
            apply_retiming(correlator, {"h": 0, "a1": 1, "a2": 0, "a3": 0})

    def test_total_delays_preserved_on_cycles(self, correlator):
        r = feasible_retiming(correlator, TIMES, 5)
        assert r is not None
        out = apply_retiming(correlator, r)
        # delay count around any cycle is retiming-invariant
        assert out.total_delays() == correlator.total_delays()


class TestFeasibleRetiming:
    def test_achieves_target(self, correlator):
        for target in (4, 5, 6):
            r = feasible_retiming(correlator, TIMES, target)
            assert r is not None
            retimed = apply_retiming(correlator, r)
            assert cycle_period(retimed, TIMES) <= target

    def test_impossible_target(self, correlator):
        # the mul alone takes 3; a period of 2 is impossible
        assert feasible_retiming(correlator, TIMES, 2) is None

    def test_bound_by_cycle_ratio(self, correlator):
        # total time 6 over 3 delays -> no period below 2 regardless
        assert feasible_retiming(correlator, TIMES, 1) is None

    def test_missing_times(self, correlator):
        with pytest.raises(GraphError):
            feasible_retiming(correlator, {"h": 1}, 5)


class TestMinCyclePeriod:
    def test_correlator_reaches_three(self, correlator):
        period, r = min_cycle_period(correlator, TIMES)
        assert period == 3  # limited by the multiplier itself
        retimed = apply_retiming(correlator, r)
        assert cycle_period(retimed, TIMES) == 3

    def test_acyclic_graph_pipelines_to_max_node_time(self, diamond):
        """With no cycles there is no delay-conservation constraint:
        retiming may insert pipeline registers (software pipelining of
        the loop body) all the way down to the largest node time."""
        unit = {n: 1 for n in diamond.nodes()}
        period, r = min_cycle_period(diamond, unit)
        assert period == 1
        retimed = apply_retiming(diamond, r)
        assert cycle_period(retimed, unit) == 1

    def test_enables_tighter_synthesis_deadlines(self, correlator):
        """Retiming extends the feasible deadline range of phase 1."""
        from repro.assign.assignment import min_completion_time
        from repro.fu.random_tables import random_table

        table = random_table(correlator, num_types=3, seed=0)
        times = table.min_times(correlator.nodes())
        period, r = min_cycle_period(correlator, times)
        before = min_completion_time(correlator.dag(), table)
        after = min_completion_time(apply_retiming(correlator, r).dag(), table)
        assert after <= before
