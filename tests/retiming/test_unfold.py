"""Unit tests for loop unfolding."""

import pytest

from repro.errors import GraphError
from repro.graph.dfg import DFG
from repro.retiming.unfold import unfold, unfolded_name


@pytest.fixture
def loop():
    """A two-node loop: a -> b (0 delays), b -> a (2 delays)."""
    return DFG.from_edges([("a", "b", 0), ("b", "a", 2)], name="loop")


class TestStructure:
    def test_node_count_multiplies(self, loop):
        assert len(unfold(loop, 3)) == 6

    def test_edge_count_multiplies(self, loop):
        assert unfold(loop, 3).num_edges() == 6

    def test_total_delays_preserved(self, loop):
        for f in (1, 2, 3, 4, 7):
            assert unfold(loop, f).total_delays() == loop.total_delays()

    def test_factor_one_is_renaming(self, loop):
        u = unfold(loop, 1)
        assert len(u) == len(loop)
        assert {(str(a), str(b), d) for a, b, d in u.edges()} == {
            ("a@0", "b@0", 0),
            ("b@0", "a@0", 2),
        }

    def test_bad_factor(self, loop):
        with pytest.raises(GraphError):
            unfold(loop, 0)

    def test_ops_and_origin_preserved(self, loop):
        loop.set_attr("a", "op", "mul")
        u = unfold(loop, 2)
        assert u.op("a@0") == "mul" and u.op("a@1") == "mul"
        assert u.attr("a@1", "origin") == "a"


class TestDelaySemantics:
    def test_delay_routing(self, loop):
        u = unfold(loop, 2)
        delays = {(str(a), str(b)): d for a, b, d in u.edges()}
        # b@0 -> a@(0+2 mod 2 = 0) with floor(2/2)=1 delay
        assert delays[("b@0", "a@0")] == 1
        assert delays[("b@1", "a@1")] == 1
        # zero-delay edges stay within the same copy
        assert delays[("a@0", "b@0")] == 0
        assert delays[("a@1", "b@1")] == 0

    def test_unfolding_exposes_parallelism(self):
        """Unfolding a 1-delay self-recurrence by 2 keeps the two copies
        dependent, but a 2-delay recurrence splits into two chains."""
        two_delay = DFG.from_edges([("x", "x", 2)])
        u = unfold(two_delay, 2)
        dag = u.dag()
        assert dag.num_edges() == 0  # both copies independent

        one_delay = DFG.from_edges([("x", "x", 1)])
        u1 = unfold(one_delay, 2)
        dag1 = u1.dag()
        assert dag1.num_edges() == 1  # x@0 -> x@1 inside an iteration

    def test_unfolded_dag_longest_path_grows(self):
        one_delay = DFG.from_edges([("x", "x", 1)])
        times = {unfolded_name("x", i): 2 for i in range(4)}
        from repro.graph.paths import longest_path_time

        u = unfold(one_delay, 4)
        assert longest_path_time(u.dag(), times) == 8

    def test_unfolded_graph_feeds_synthesis(self):
        """End-to-end: unfold a cyclic filter, then synthesize its DAG."""
        from repro.fu.random_tables import random_table
        from repro.suite.extras import iir_biquad_cascade
        from repro.synthesis import synthesize
        from repro.assign.assignment import min_completion_time

        cyclic = iir_biquad_cascade(1)
        u = unfold(cyclic, 2)
        dag = u.dag()
        table = random_table(dag, num_types=3, seed=0)
        deadline = min_completion_time(dag, table) + 5
        result = synthesize(dag, table, deadline)
        result.verify(dag, table)


class TestEdgeCases:
    def test_single_node_no_edges(self):
        one = DFG(name="one")
        one.add_node("x", op="mul")
        u = unfold(one, 3)
        assert sorted(u.nodes()) == ["x@0", "x@1", "x@2"]
        assert u.num_edges() == 0
        assert u.dag().num_edges() == 0

    def test_single_node_factor_one_is_identity_up_to_renaming(self):
        one = DFG(name="one")
        one.add_node("x", op="mul")
        u = unfold(one, 1)
        assert u.nodes() == [unfolded_name("x", 0)]
        assert u.op(unfolded_name("x", 0)) == "mul"

    def test_factor_below_one_raises(self):
        one = DFG(name="one")
        one.add_node("x", op="add")
        for factor in (0, -1):
            with pytest.raises(GraphError, match="unfolding factor"):
                unfold(one, factor)

    def test_zero_delay_cycle_rejected_by_dag_extraction(self):
        from repro.errors import CyclicDependencyError

        bad = DFG.from_edges([("a", "b", 0), ("b", "a", 0)], name="bad")
        with pytest.raises(CyclicDependencyError, match="zero-delay cycle"):
            bad.dag()
        # unfolding cannot launder the cycle into a schedulable graph:
        # every copy keeps a zero-delay cycle of its own
        with pytest.raises(CyclicDependencyError, match="zero-delay cycle"):
            unfold(bad, 2).dag()

    def test_delayed_self_loop_round_trips_through_dag(self):
        loop = DFG.from_edges([("x", "x", 1)])
        assert unfold(loop, 1).total_delays() == 1
        assert unfold(loop, 1).dag().num_edges() == 0
