"""Shared helpers for the lintkit test suite."""

from pathlib import Path

import pytest

from repro.lintkit import module_from_source, resolve_rules, run_rules

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).parents[2] / "src" / "repro"


def load_fixture(name, *, module, is_package=False):
    """Parse a fixture snippet as if it lived at ``module``."""
    path = FIXTURES / name
    return module_from_source(
        path.read_text(encoding="utf-8"),
        module=module,
        path=str(path),
        is_package=is_package,
    )


def run_rule(code, modules):
    """Run a single rule over pre-parsed modules; return findings."""
    findings, _ = run_rules(modules, resolve_rules([code]))
    return findings


@pytest.fixture
def fixtures_dir():
    return FIXTURES


@pytest.fixture
def src_repro():
    return SRC_REPRO
