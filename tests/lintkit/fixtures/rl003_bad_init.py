"""RL003 fixture for a package __init__ (2 findings).

``ghost`` is exported but never bound; ``helper`` is re-exported from a
submodule but missing from ``__all__``.
"""

from .submodule import helper, listed

__all__ = [
    "listed",
    "ghost",  # finding: not defined or imported anywhere
]
