"""RL002 fixture: tolerance-based float handling passes the rule."""

import math

RTOL = 1e-9


def has_error(err):
    return not math.isclose(err, 0.0, abs_tol=1e-12)


def same_cost(a, b):
    return abs(a - b) <= RTOL * max(1.0, abs(a))


def integer_compare(steps):
    return steps == 0  # int literal: out of scope for RL002


def ordered_compare(cost_floor, x):
    return x <= 0.5  # ordered comparisons on floats are fine
