"""RL009 fixture: statically-vetted obs names (no findings expected)."""

from ..obs import add_metric, span

PHASE = "assign"
_METRICS = {"hits": "dp.cache_hits", "miss": "dp.cache_miss"}


def run(x, label="engine.pmap"):
    with span(PHASE):
        add_metric(_METRICS["hits"], 1)
        add_metric("dp.refreshes", x)
    with span(label):
        pass
    return x
