"""RL004 fixture: loaded as ``repro.fu.cycle_a``; imports its sibling."""

from .cycle_b import helper_b


def helper_a():
    return helper_b()
