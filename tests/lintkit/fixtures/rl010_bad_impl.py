"""RL010 fixture: facade + shim drift (loaded as ``repro.impl``)."""


def deprecated_positionals(*names, keep=2):
    def deco(fn):
        return fn

    return deco


def run_flow(dfg, table, deadline=100, algorithm=None):
    # defaulted positionals on a root-facade export
    return (dfg, table, deadline, algorithm)


@deprecated_positionals("mode", "workers", keep=2)
def tuned(a, b, *, workers=0, mode="fast"):
    # names listed out of declaration order
    return (a, b, workers, mode)


@deprecated_positionals("missing", keep=2)
def shifted(a, b, c, *, other=0):
    # 'missing' is not a kwonly param; 3 positionals vs keep=2
    return (a, b, c, other)
