"""Stand-in for ``repro.engine.parallel`` in project-rule fixtures.

Loaded as module ``repro.engine.parallel`` so the payload tracker's
``pmap`` seeding finds a scanned definition to resolve against.
"""


def pmap(fn, items, workers=0, label="engine.pmap"):
    return [fn(item) for item in items]
