"""RL004 fixture: loaded as ``repro.fu.cycle_b``; imports cycle_a back."""

from .cycle_a import helper_a


def helper_b():
    return helper_a()
