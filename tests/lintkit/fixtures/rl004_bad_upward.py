"""RL004 fixture: loaded as ``repro.graph.badmod`` in the tests.

Both imports are upward (graph is layer 1): one at module level into
the scheduler, one deferred into the report layer — deferral does not
launder the dependency.
"""

from ..sched.asap_alap import asap_starts  # finding: graph -> sched


def sneaky():
    from repro.report.tables import format_percent  # finding: graph -> report

    return format_percent, asap_starts
