"""RL001 fixture: builtin raises on library failure paths (3 findings)."""


def lookup(table, key):
    if key not in table:
        raise KeyError(f"no row for {key}")  # finding: builtin KeyError
    return table[key]


def check_deadline(deadline):
    if deadline < 0:
        raise ValueError("negative deadline")  # finding: builtin ValueError


class NotAnError:
    pass


def explode():
    raise NotAnError()  # finding: class outside the taxonomy
