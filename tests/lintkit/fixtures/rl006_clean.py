"""Fixture: explicit seeded-Generator discipline (no findings)."""

import numpy as np
from numpy.random import Generator, SeedSequence, default_rng


def sample(seed: int, index: int) -> int:
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    alt: Generator = default_rng(SeedSequence([seed]))
    return int(rng.integers(10) + alt.integers(10))
