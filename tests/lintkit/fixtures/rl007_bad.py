"""RL007 fixture: payloads that cannot survive spawn pickling."""

from ..engine.parallel import pmap

_DOUBLE = lambda x: 2 * x  # noqa: E731


class Runner:
    def run(self, x):
        return x


def helper(fn, items):
    return pmap(fn, items)


def two_deep(fn, items):
    return helper(fn, items)


def bad_lambda(items):
    return pmap(lambda x: x + 1, items)


def bad_closure(items):
    def inner(x):
        return x

    return pmap(inner, items)


def bad_bound_method(items):
    runner = Runner()
    return pmap(runner.run, items)


def bad_alias(items):
    return pmap(_DOUBLE, items)


def bad_forwarded(items):
    return two_deep(lambda x: x - 1, items)
