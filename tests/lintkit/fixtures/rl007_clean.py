"""RL007 fixture: spawn-safe payloads (no findings expected)."""

from functools import partial

from ..engine.parallel import pmap


def work(x):
    return x + 1


def scale(factor, x):
    return factor * x


def helper(fn, items):
    return pmap(fn, items)


def ok_direct(items):
    return pmap(work, items)


def ok_forwarded(items):
    return helper(work, items)


def ok_partial(items):
    return pmap(partial(scale, 3), items)


def ok_dynamic(make_fn, items):
    return pmap(make_fn(), items)  # factory result: not provable, not flagged
