"""Regression fixture: a directive on a statement's first line must
cover findings anchored on *later* lines of the same statement."""


def f(err):
    return (  # lint: ignore[RL002]
        err
        == 0.0
    )


def g(err):
    return (
        err
        == 0.0
    )
