"""RL010 fixture: keyword-only facade + consistent shim (no findings)."""


def deprecated_positionals(*names, keep=2):
    def deco(fn):
        return fn

    return deco


def run_flow(dfg, table, *, deadline=100, algorithm=None):
    return (dfg, table, deadline, algorithm)


@deprecated_positionals("workers", "mode", keep=2)
def tuned(a, b, *, workers=0, mode="fast"):
    return (a, b, workers, mode)
