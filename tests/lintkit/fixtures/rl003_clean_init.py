"""RL003 fixture: __all__ and the re-exports agree."""

import json  # external import: not a re-export, needs no listing

from .submodule import helper, listed
from ._private import _internal  # underscore names are never re-exports

__all__ = [
    "listed",
    "helper",
    "VERSION",
]

VERSION = json.dumps({"v": 1})
