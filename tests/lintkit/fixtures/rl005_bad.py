"""RL005 fixture: stdout chatter and assert-as-validation (3 findings)."""

import sys


def noisy_compute(x):
    print("computing", x)  # finding: print in library code
    sys.stdout.write("still computing\n")  # finding: stdout write
    return x + 1


def validate(deadline, table):
    assert deadline >= 0, "bad deadline"  # finding: validates a parameter
    return deadline, table
