"""RL010 fixture: root facade ``__init__`` (loaded as package ``repro``)."""

from .impl import run_flow

__all__ = ["run_flow"]
