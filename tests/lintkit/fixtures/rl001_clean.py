"""RL001 fixture: every raise stays inside the ReproError taxonomy."""

from repro.errors import InfeasibleError, ReproError


class LocalError(ReproError):
    """Locally-defined taxonomy member (recognized via base fixpoint)."""


class DerivedError(LocalError):
    """Second-level subclass (recognized transitively)."""


def check_deadline(deadline):
    if deadline < 0:
        raise InfeasibleError("negative deadline")


def local_failure():
    raise DerivedError("still taxonomy")


def abstract_method():
    raise NotImplementedError  # allowed: programmer error by policy


def reraise():
    try:
        check_deadline(-1)
    except ReproError as exc:
        raise  # bare re-raise is always fine
    return exc


def reraise_bound(exc):
    raise exc  # bound variable, not a class reference
