"""RL009 fixture: obs-hygiene violations."""

from ..obs import add_metric, span

BAD_NAME = "Has Spaces"


def run(x):
    with span(f"run.{x}"):
        pass
    handle = span("leaked_span")
    add_metric("CamelCase", 1)
    add_metric(BAD_NAME, 1)
    add_metric("rogue.counter", 1)
    return handle


def emit(name, value):
    add_metric(name, value)
