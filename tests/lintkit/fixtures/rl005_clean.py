"""RL005 fixture: quiet library code with invariant-only asserts."""

import sys

from repro.errors import ReproError


def validate(deadline):
    if deadline < 0:
        raise ReproError("bad deadline")
    best = None
    for candidate in range(deadline + 1):
        best = candidate
    assert best is not None  # local invariant, not parameter validation
    return best


def log_to_stderr(message):
    sys.stderr.write(message + "\n")  # stderr is fine; stdout is not


class Holder:
    def __init__(self, value):
        self.value = value

    def check(self):
        assert self.value is not None  # `self` is exempt from the rule
        return self.value
