"""RL002 fixture: exact float comparisons in a numeric layer (3 findings)."""


def has_error(err):
    return err == 0.0  # finding: equality against a float literal


def is_unit(scale):
    return scale != -1.0  # finding: inequality against a signed float


def same_cost(table, node, k):
    return table.cost(node, k) == table.cost(node, k + 1)  # finding: cost call
