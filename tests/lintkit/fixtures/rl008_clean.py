"""RL008 fixture: worker-private state only (no findings expected).

``parent_side_reset`` writes shared state but is *not* reachable from
any payload — the rule must leave it alone (reachability, not a
whole-tree write ban).
"""

from ..engine.parallel import pmap

LIMIT = 10
CACHE = {}


class Accumulator:
    def __init__(self):
        self.items = []

    def add(self, x):
        self.items.append(x)


def work(x):
    local = {}
    local[x] = x
    acc = Accumulator()
    acc.add(x)
    return min(x, LIMIT)


def parent_side_reset():
    CACHE.clear()


def run(items):
    return pmap(work, items)
