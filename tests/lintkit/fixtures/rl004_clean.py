"""RL004 fixture: loaded as ``repro.sched.goodmod`` — downward only."""

import math

from ..errors import ScheduleError
from ..graph.dag import topological_order
from ..fu.table import TimeCostTable


def use(dfg, table: TimeCostTable):
    if not isinstance(table, TimeCostTable):
        raise ScheduleError("not a table")
    return math.prod(1 for _ in topological_order(dfg))
