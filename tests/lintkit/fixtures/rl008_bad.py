"""RL008 fixture: shared-state writes inside worker-reachable code."""

from ..engine.parallel import pmap

CACHE = {}
EVENTS = []


class Config:
    mode = "fast"


def record(x):
    CACHE[x] = x * 2
    EVENTS.append(x)
    Config.mode = "slow"
    return x


def helper(x):
    global EVENTS
    EVENTS = []
    return x


def work(x):
    record(x)
    return helper(x)


def run(items):
    return pmap(work, items)
