"""Fixture: module-state randomness in a numeric layer (5 findings)."""

import random  # finding 1: stdlib random import

import numpy as np
from random import choice  # finding 2: stdlib random import-from
from numpy.random import rand  # finding 3: global-state helper


def jitter(values):
    np.random.seed(0)  # finding 4: global RNG mutation
    noise = np.random.normal(0.0, 1.0, len(values))  # finding 5
    random.shuffle(values)  # not re-flagged: the import is the finding
    return [v + n + choice([0, 1]) + rand() for v, n in zip(values, noise)]
