"""Result-cache correctness: reuse, invalidation, robustness, --changed."""

import json
import subprocess

import pytest

from repro.lintkit import (
    LintCache,
    discover,
    lint_paths,
    resolve_rules,
    run_rules,
)


def _write_tree(tmp_path, body="def f(err):\n    return err == 0.0\n"):
    pkg = tmp_path / "repro"
    sub = pkg / "assign"
    sub.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (sub / "__init__.py").write_text("")
    (sub / "mod.py").write_text(body)
    return pkg


class TestCacheReuse:
    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"

        cache = LintCache.load(cache_dir)
        cold = lint_paths([str(pkg)], use_baseline=False, cache=cache)
        cache.save()
        assert cache.hits == 0

        warm_cache = LintCache.load(cache_dir)
        warm = lint_paths(
            [str(pkg)], use_baseline=False, cache=warm_cache
        )
        assert warm_cache.hits > 0
        assert warm_cache.misses == 0
        assert warm.findings == cold.findings
        assert warm.suppressed_inline == cold.suppressed_inline

    def test_warm_run_does_not_parse(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cache = LintCache.load(cache_dir)
        lint_paths([str(pkg)], use_baseline=False, cache=cache)
        cache.save()

        warm_cache = LintCache.load(cache_dir)
        modules = discover([str(pkg)], lazy=True)
        run_rules(modules, resolve_rules(), cache=warm_cache)
        # per-file results came from the cache; only project-wide rules
        # may touch ASTs, and on an unchanged tree they are cached too
        assert all(m._tree is None for m in modules)

    def test_edit_invalidates_only_that_file(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cache = LintCache.load(cache_dir)
        lint_paths([str(pkg)], use_baseline=False, cache=cache)
        cache.save()

        (pkg / "assign" / "mod.py").write_text("x = 1\n")
        warm_cache = LintCache.load(cache_dir)
        report = lint_paths(
            [str(pkg)], use_baseline=False, cache=warm_cache
        )
        assert report.findings == []
        # the two untouched __init__.py hit; mod.py and the project
        # pass (tree signature changed) miss
        assert warm_cache.hits == 2
        assert warm_cache.misses == 2

    def test_rule_selection_changes_key(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cache = LintCache.load(cache_dir)
        lint_paths(
            [str(pkg)], select=["RL002"], use_baseline=False, cache=cache
        )
        cache.save()
        other = LintCache.load(cache_dir)
        report = lint_paths(
            [str(pkg)], select=["RL001"], use_baseline=False, cache=other
        )
        assert other.hits == 0
        assert report.findings == []


class TestCacheRobustness:
    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "results.json").write_text("{not json")
        cache = LintCache.load(cache_dir)
        assert cache.get_file("deadbeef", "RL001") is None

    def test_version_mismatch_degrades_to_cold(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "results.json").write_text(
            json.dumps({"version": 999, "files": {"k": {}}})
        )
        cache = LintCache.load(cache_dir)
        assert cache.get_file("k", "") is None

    def test_save_prunes_untouched_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = LintCache.load(cache_dir)
        cache.put_file("hash_a", "RL001", [], 0)
        cache.save()

        second = LintCache.load(cache_dir)
        second.put_file("hash_b", "RL001", [], 0)
        second.save()

        third = LintCache.load(cache_dir)
        assert third.get_file("hash_b", "RL001") is not None
        assert third.get_file("hash_a", "RL001") is None

    def test_cache_dir_self_ignores(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = LintCache.load(cache_dir)
        cache.put_file("h", "c", [], 0)
        cache.save()
        assert (cache_dir / ".gitignore").read_text() == "*\n"


class TestChangedRestriction:
    def _git(self, *args, cwd):
        subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.com",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.com",
                "HOME": str(cwd),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    @pytest.fixture
    def git_tree(self, tmp_path):
        pkg = _write_tree(tmp_path, body="x = 1\n")
        self._git("init", "-b", "main", cwd=tmp_path)
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-m", "seed", cwd=tmp_path)
        return tmp_path, pkg

    def test_changed_paths_sees_new_edits(self, git_tree, monkeypatch):
        from repro.lintkit import changed_paths

        tmp_path, pkg = git_tree
        monkeypatch.chdir(tmp_path)
        self._git("checkout", "-b", "feature", cwd=tmp_path)
        offender = pkg / "assign" / "mod.py"
        offender.write_text("def f(err):\n    return err == 0.0\n")
        changed = changed_paths(str(tmp_path))
        assert str(offender.resolve()) in changed
        assert len(changed) == 1

    def test_per_file_paths_restricts_per_file_rules(self, git_tree):
        tmp_path, pkg = git_tree
        offender = pkg / "assign" / "mod.py"
        offender.write_text("def f(err):\n    return err == 0.0\n")
        untouched = pkg / "assign" / "other.py"
        untouched.write_text("def g(err):\n    return err == 0.0\n")

        full = lint_paths([str(pkg)], use_baseline=False)
        assert len(full.findings) == 2

        restricted = lint_paths(
            [str(pkg)],
            use_baseline=False,
            per_file_paths={str(offender.resolve())},
        )
        assert [f.path for f in restricted.findings] == [str(offender)]
