"""lintkit CLI tests: exit codes, formats, baseline workflow."""

import json

import pytest

from repro.lintkit.cli import main


def _make_tree(tmp_path, bad=True):
    """A minimal on-disk `repro` package, optionally with an RL002 hit."""
    pkg = tmp_path / "repro"
    sub = pkg / "assign"
    sub.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (sub / "__init__.py").write_text("")
    body = "def f(err):\n    return err == 0.0\n" if bad else "X = 1\n"
    (sub / "mod.py").write_text(body)
    return str(pkg)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert main([_make_tree(tmp_path, bad=False)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([_make_tree(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL002" in out
        assert "1 finding" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert main([_make_tree(tmp_path), "--select", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err

    def test_bad_flag_is_argparse_usage_error(self):
        with pytest.raises(SystemExit) as info:
            main(["--format", "bogus"])
        assert info.value.code == 2


class TestFormats:
    def test_json_output_parses(self, tmp_path, capsys):
        assert main([_make_tree(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RL002"
        assert finding["module"] == "repro.assign.mod"
        assert finding["line"] == 2

    def test_select_limits_rules(self, tmp_path, capsys):
        assert main([_make_tree(tmp_path), "--select", "RL001"]) == 0
        capsys.readouterr()

    def test_ignore_skips_rule(self, tmp_path, capsys):
        assert main([_make_tree(tmp_path), "--ignore", "RL002"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert code in out


class TestBaselineWorkflow:
    def test_update_then_lint_is_clean(self, tmp_path, capsys):
        tree = _make_tree(tmp_path)
        baseline = tmp_path / "baseline.toml"
        assert main([tree, "--update-baseline", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main([tree, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_no_baseline_reinstates_findings(self, tmp_path, capsys):
        tree = _make_tree(tmp_path)
        baseline = tmp_path / "lintkit-baseline.toml"
        assert main([tree, "--update-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # auto-discovered from the tree's parent directory…
        assert main([tree]) == 0
        capsys.readouterr()
        # …but --no-baseline bypasses it
        assert main([tree, "--no-baseline"]) == 1
        capsys.readouterr()

    def test_unused_entry_warns(self, tmp_path, capsys):
        tree = _make_tree(tmp_path, bad=False)
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            "[[suppress]]\n"
            'rule = "RL002"\n'
            'module = "repro.assign.gone"\n'
            'snippet = "return err == 0.0"\n'
            'reason = "stale"\n',
            encoding="utf-8",
        )
        assert main([tree, "--baseline", str(baseline)]) == 0
        assert "unused baseline entry" in capsys.readouterr().out
