"""Baseline round-trip and matching-semantics tests."""

import pytest

from repro.errors import LintError
from repro.lintkit import format_baseline, load_baseline

from .conftest import load_fixture, run_rule


def _bad_findings():
    mod = load_fixture("rl002_bad.py", module="repro.assign.fixture")
    return run_rule("RL002", [mod])


class TestRoundTrip:
    def test_written_baseline_suppresses_everything(self, tmp_path):
        findings = _bad_findings()
        assert findings, "fixture must trigger for the round-trip to mean anything"
        path = tmp_path / "baseline.toml"
        path.write_text(format_baseline(findings), encoding="utf-8")
        baseline = load_baseline(path)
        kept, suppressed, unused = baseline.filter(findings)
        assert kept == []
        assert suppressed == len(findings)
        assert unused == []

    def test_entries_carry_reason_field(self, tmp_path):
        text = format_baseline(_bad_findings(), reason="fixture-only")
        path = tmp_path / "baseline.toml"
        path.write_text(text, encoding="utf-8")
        baseline = load_baseline(path)
        assert baseline.entries
        assert all(e.reason == "fixture-only" for e in baseline.entries)

    def test_matching_is_line_number_independent(self, tmp_path):
        """A shifted (but unedited) offending line stays suppressed."""
        findings = _bad_findings()
        path = tmp_path / "baseline.toml"
        path.write_text(format_baseline(findings), encoding="utf-8")
        baseline = load_baseline(path)
        from dataclasses import replace

        shifted = [replace(f, line=f.line + 40) for f in findings]
        kept, suppressed, _ = baseline.filter(shifted)
        assert kept == []
        assert suppressed == len(findings)

    def test_edited_line_invalidates_entry(self, tmp_path):
        findings = _bad_findings()
        path = tmp_path / "baseline.toml"
        path.write_text(format_baseline(findings), encoding="utf-8")
        baseline = load_baseline(path)
        from dataclasses import replace

        edited = [replace(f, snippet=f.snippet + "  # edited") for f in findings]
        kept, suppressed, unused = baseline.filter(edited)
        assert len(kept) == len(findings)
        assert suppressed == 0
        assert len(unused) == len(baseline.entries)


class TestErrors:
    def test_malformed_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[[suppress]\n", encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(path)

    def test_missing_required_key(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            '[[suppress]]\nrule = "RL002"\nmodule = "m"\n', encoding="utf-8"
        )
        with pytest.raises(LintError):
            load_baseline(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(LintError):
            load_baseline(tmp_path / "nope.toml")

    def test_empty_baseline_is_valid(self, tmp_path):
        path = tmp_path / "empty.toml"
        path.write_text("version = 1\n", encoding="utf-8")
        assert load_baseline(path).entries == []
