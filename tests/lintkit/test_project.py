"""Tests for the two-pass analysis core: symbol tables + call graph.

These pin the cross-module machinery the project-wide rules stand on:
name resolution through package re-exports, call edges (including
callback arguments), reachability, and the payload-forwarding fixpoint
that finds a lambda handed to ``pmap`` through two helper calls.
"""

from repro.lintkit import (
    CallGraph,
    Project,
    ProjectContext,
    classify_payload,
    module_from_source,
)

PARALLEL = (
    "def pmap(fn, items, workers=0):\n"
    "    return [fn(x) for x in items]\n"
)


def _project(*mods):
    return Project(list(mods))


def _mod(source, module, *, is_package=False):
    return module_from_source(
        source,
        module=module,
        path=module.replace(".", "/") + ".py",
        is_package=is_package,
    )


class TestSymbolTables:
    def test_functions_and_qualnames(self):
        mod = _mod(
            "def top():\n"
            "    def inner():\n"
            "        pass\n"
            "class C:\n"
            "    def method(self):\n"
            "        pass\n",
            "repro.pkg.mod",
        )
        ctx = ProjectContext.build(_project(mod))
        names = set(ctx.symbols["repro.pkg.mod"].functions)
        assert names == {"top", "top.inner", "C.method"}
        assert ctx.symbols["repro.pkg.mod"].functions["top.inner"].is_nested
        assert ctx.symbols["repro.pkg.mod"].functions["C.method"].is_method

    def test_context_memoized_on_project(self):
        project = _project(_mod("x = 1\n", "repro.m"))
        assert ProjectContext.of(project) is ProjectContext.of(project)

    def test_resolution_through_package_reexport(self):
        pkg = _mod(
            "from .mod import work\n__all__ = ['work']\n",
            "repro.pkg",
            is_package=True,
        )
        mod = _mod("def work(x):\n    return x\n", "repro.pkg.mod")
        user = _mod(
            "from .pkg import work\n", "repro.user"
        )
        ctx = ProjectContext.build(_project(pkg, mod, user))
        resolved = ctx.resolve_name("repro.user", "work")
        assert resolved is not None
        kind, fn = resolved
        assert kind == "function"
        assert fn.id.module == "repro.pkg.mod"

    def test_binding_shadows_same_named_submodule(self):
        """``from .tree import tree`` binds the function, not the module."""
        pkg = _mod(
            "from .tree import tree\n__all__ = ['tree']\n",
            "repro.pkg",
            is_package=True,
        )
        sub = _mod("def tree():\n    return 1\n", "repro.pkg.tree")
        ctx = ProjectContext.build(_project(pkg, sub))
        resolved = ctx.resolve_name("repro.pkg", "tree")
        assert resolved is not None and resolved[0] == "function"


class TestCallGraph:
    def test_direct_edges_and_reachability(self):
        mod = _mod(
            "def a():\n    return b()\n"
            "def b():\n    return c()\n"
            "def c():\n    return 1\n"
            "def island():\n    return 2\n",
            "repro.m",
        )
        ctx = ProjectContext.build(_project(mod))
        graph = CallGraph.of(ctx)
        fns = ctx.symbols["repro.m"].functions
        reach = graph.reachable([fns["a"].id])
        names = {fid.qualname for fid in reach}
        assert names == {"a", "b", "c"}

    def test_callback_argument_creates_edge(self):
        mod = _mod(
            "def apply(fn, x):\n    return fn(x)\n"
            "def cb(x):\n    return x\n"
            "def main(x):\n    return apply(cb, x)\n",
            "repro.m",
        )
        ctx = ProjectContext.build(_project(mod))
        graph = CallGraph.of(ctx)
        fns = ctx.symbols["repro.m"].functions
        reach = graph.reachable([fns["main"].id])
        assert fns["cb"].id in reach

    def test_graph_memoized_on_context(self):
        ctx = ProjectContext.build(_project(_mod("x = 1\n", "repro.m")))
        assert CallGraph.of(ctx) is CallGraph.of(ctx)


class TestPayloadFixpoint:
    def _mods(self, user_source):
        return [
            _mod(PARALLEL, "repro.engine.parallel"),
            _mod(user_source, "repro.assign.user"),
        ]

    def _problems(self, user_source):
        project = _project(*self._mods(user_source))
        ctx = ProjectContext.of(project)
        problems = []
        roots = []
        for site in CallGraph.of(ctx).payload_sites:
            p, r = classify_payload(ctx, site)
            problems.extend(p)
            roots.extend(r)
        return problems, roots

    def test_lambda_two_calls_deep_is_flagged(self):
        """The ISSUE acceptance case: lambda → helper → helper → pmap."""
        problems, _ = self._problems(
            "from ..engine.parallel import pmap\n"
            "def inner(fn, items):\n"
            "    return pmap(fn, items)\n"
            "def outer(fn, items):\n"
            "    return inner(fn, items)\n"
            "def entry(items):\n"
            "    return outer(lambda x: x + 1, items)\n"
        )
        assert len(problems) == 1
        assert "lambda" in problems[0].reason

    def test_module_level_function_is_not_flagged(self):
        problems, roots = self._problems(
            "from ..engine.parallel import pmap\n"
            "def work(x):\n"
            "    return x + 1\n"
            "def entry(items):\n"
            "    return pmap(work, items)\n"
        )
        assert problems == []
        assert [fn.name for fn in roots] == ["work"]

    def test_forwarding_param_becomes_sink_not_site(self):
        """The forwarding call itself is never reported as a site."""
        project = _project(
            *self._mods(
                "from ..engine.parallel import pmap\n"
                "def helper(fn, items):\n"
                "    return pmap(fn, items)\n"
                "def entry(items):\n"
                "    return helper(sum, items)\n"
            )
        )
        ctx = ProjectContext.of(project)
        sites = [
            s
            for s in CallGraph.of(ctx).payload_sites
            if s.module == "repro.assign.user"
        ]
        # helper's `pmap(fn, ...)` is swallowed by the fixpoint; only
        # entry's `helper(sum, ...)` surfaces (and `sum` is unresolvable,
        # hence clean)
        assert [s.entry for s in sites] == ["helper"]
        for site in sites:
            problems, _ = classify_payload(ctx, site)
            assert problems == []
