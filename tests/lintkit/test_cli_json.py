"""Machine-readable CLI contracts: JSON schema, SARIF shape, exit codes.

External tooling (CI annotation upload, dashboards, diff scripts)
parses these outputs, so their shapes are pinned exactly: loosening a
key here is an API break for consumers that never import this package.
"""

import json

import pytest

from repro.lintkit.cli import main
from repro.lintkit.sarif import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME


def _make_tree(tmp_path, bad=True):
    pkg = tmp_path / "repro"
    sub = pkg / "assign"
    sub.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (sub / "__init__.py").write_text("")
    body = "def f(err):\n    return err == 0.0\n" if bad else "x = 1\n"
    (sub / "mod.py").write_text(body)
    return str(pkg)


@pytest.fixture
def no_cache_args(tmp_path):
    """Keep CLI cache writes inside tmp, away from the repo CWD."""
    return ["--cache-dir", str(tmp_path / ".lintkit_cache")]


class TestJsonSchema:
    def test_finding_object_keys_are_pinned(
        self, tmp_path, capsys, no_cache_args
    ):
        tree = _make_tree(tmp_path)
        assert main([tree, "--format", "json", *no_cache_args]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "findings",
            "count",
            "suppressed_inline",
            "suppressed_baseline",
            "unused_baseline",
        }
        (finding,) = payload["findings"]
        assert set(finding) == {
            "module",
            "path",
            "line",
            "col",
            "code",
            "message",
            "snippet",
            "fingerprint",
        }
        assert finding["code"] == "RL002"
        assert finding["module"] == "repro.assign.mod"
        assert finding["line"] == 2
        assert isinstance(finding["fingerprint"], str)
        assert len(finding["fingerprint"]) == 16

    def test_fingerprint_is_line_number_independent(
        self, tmp_path, capsys, no_cache_args
    ):
        tree = _make_tree(tmp_path)
        assert main([tree, "--format", "json", *no_cache_args]) == 1
        first = json.loads(capsys.readouterr().out)["findings"][0]
        mod = tmp_path / "repro" / "assign" / "mod.py"
        mod.write_text("import os  # noqa\n" + mod.read_text())
        assert main([tree, "--format", "json", *no_cache_args]) == 1
        second = json.loads(capsys.readouterr().out)["findings"][0]
        assert second["line"] == first["line"] + 1
        assert second["fingerprint"] == first["fingerprint"]


class TestSarifShape:
    def test_sarif_2_1_0_document(self, tmp_path, capsys, no_cache_args):
        tree = _make_tree(tmp_path)
        assert main([tree, "--format", "sarif", *no_cache_args]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"] == SARIF_SCHEMA
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        codes = [r["id"] for r in driver["rules"]]
        assert codes == sorted(codes)
        assert "RL002" in codes
        (result,) = run["results"]
        assert result["ruleId"] == "RL002"
        assert driver["rules"][result["ruleIndex"]]["id"] == "RL002"
        assert result["level"] == "warning"
        (loc,) = result["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1
        assert loc["physicalLocation"]["artifactLocation"]["uri"].endswith(
            "repro/assign/mod.py"
        )
        assert "lintkitFingerprint/v1" in result["partialFingerprints"]

    def test_out_writes_file(self, tmp_path, capsys, no_cache_args):
        tree = _make_tree(tmp_path)
        out = tmp_path / "artifacts" / "lint.sarif"
        assert (
            main(
                [tree, "--format", "sarif", "--out", str(out), *no_cache_args]
            )
            == 1
        )
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["version"] == SARIF_VERSION


class TestExitCodes:
    def test_zero_when_clean(self, tmp_path, capsys, no_cache_args):
        tree = _make_tree(tmp_path, bad=False)
        assert main([tree, *no_cache_args]) == 0
        capsys.readouterr()

    def test_one_on_findings(self, tmp_path, capsys, no_cache_args):
        tree = _make_tree(tmp_path)
        assert main([tree, *no_cache_args]) == 1
        capsys.readouterr()

    def test_two_on_usage_errors(self, tmp_path, capsys, no_cache_args):
        assert main(["no/such/path", *no_cache_args]) == 2
        tree = _make_tree(tmp_path)
        assert main([tree, "--select", "RL999", *no_cache_args]) == 2
        assert (
            main([tree, "--changed", "--check-baseline", *no_cache_args])
            == 2
        )
        capsys.readouterr()

    def test_one_on_stale_baseline_even_when_clean(
        self, tmp_path, capsys, no_cache_args
    ):
        tree = _make_tree(tmp_path, bad=False)
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            "[[suppress]]\n"
            'rule = "RL002"\n'
            'module = "repro.assign.gone"\n'
            'snippet = "return err == 0.0"\n'
            'reason = "stale"\n'
        )
        args = [tree, "--baseline", str(baseline), *no_cache_args]
        assert main(args) == 0  # warning only, by default
        assert main([*args, "--check-baseline"]) == 1
        capsys.readouterr()


class TestPruneBaseline:
    def test_prune_drops_stale_keeps_used_with_reasons(
        self, tmp_path, capsys, no_cache_args
    ):
        tree = _make_tree(tmp_path)
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            "[[suppress]]\n"
            'rule = "RL002"\n'
            'module = "repro.assign.mod"\n'
            'snippet = "return err == 0.0"\n'
            'reason = "legacy comparison, tracked in #42"\n'
            "\n"
            "[[suppress]]\n"
            'rule = "RL002"\n'
            'module = "repro.assign.gone"\n'
            'snippet = "return err == 0.0"\n'
            'reason = "stale"\n'
        )
        args = [tree, "--baseline", str(baseline), *no_cache_args]
        assert main([*args, "--prune-baseline"]) == 0
        capsys.readouterr()
        text = baseline.read_text(encoding="utf-8")
        assert "repro.assign.mod" in text
        assert "legacy comparison, tracked in #42" in text
        assert "repro.assign.gone" not in text
        # post-prune: no stale entries left, finding still suppressed
        assert main([*args, "--check-baseline"]) == 0
        capsys.readouterr()
