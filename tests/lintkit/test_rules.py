"""Per-rule fixture tests: each rule has a triggering and a clean fixture.

These are the acceptance gates for the rule catalog — editing any
fixture (or breaking any rule) changes an exact expected finding count.
"""

from .conftest import load_fixture, run_rule


class TestRL001ExceptionTaxonomy:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl001_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL001", [mod])
        assert len(findings) == 3
        assert all(f.code == "RL001" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "KeyError" in messages
        assert "ValueError" in messages
        assert "NotAnError" in messages

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl001_clean.py", module="repro.assign.fixture")
        assert run_rule("RL001", [mod]) == []

    def test_taxonomy_crosses_modules(self):
        """A subclass defined in one module is recognized in another."""
        from repro.lintkit import module_from_source

        defs = module_from_source(
            "class ReproError(Exception):\n"
            "    pass\n"
            "class CustomError(ReproError):\n"
            "    pass\n",
            module="repro.errors",
            path="errors.py",
        )
        user = module_from_source(
            "from .errors import CustomError\n"
            "def f():\n"
            "    raise CustomError('x')\n",
            module="repro.graph.user",
            path="user.py",
        )
        assert run_rule("RL001", [defs, user]) == []


class TestRL002FloatEquality:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl002_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL002", [mod])
        assert len(findings) == 3
        assert all(f.code == "RL002" for f in findings)

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl002_clean.py", module="repro.assign.fixture")
        assert run_rule("RL002", [mod]) == []

    def test_out_of_scope_module_exempt(self):
        """The same offending source is fine in the report layer."""
        mod = load_fixture("rl002_bad.py", module="repro.report.fixture")
        assert run_rule("RL002", [mod]) == []

    def test_graph_paths_in_scope(self):
        mod = load_fixture("rl002_bad.py", module="repro.graph.paths")
        assert len(run_rule("RL002", [mod])) == 3


class TestRL003PublicApiSync:
    def test_bad_init_triggers(self):
        mod = load_fixture(
            "rl003_bad_init.py", module="repro.badpkg", is_package=True
        )
        findings = run_rule("RL003", [mod])
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "'ghost'" in messages  # phantom __all__ entry
        assert "'helper'" in messages  # unlisted re-export

    def test_clean_init_passes(self):
        mod = load_fixture(
            "rl003_clean_init.py", module="repro.goodpkg", is_package=True
        )
        assert run_rule("RL003", [mod]) == []

    def test_plain_module_only_checks_resolution(self):
        """Non-__init__ modules may import without re-exporting."""
        mod = load_fixture(
            "rl003_clean_init.py", module="repro.goodmod", is_package=False
        )
        assert run_rule("RL003", [mod]) == []

    def test_init_without_all_flagged(self):
        from repro.lintkit import module_from_source

        mod = module_from_source(
            "from .submodule import helper\n",
            module="repro.pkg",
            path="pkg/__init__.py",
            is_package=True,
        )
        findings = run_rule("RL003", [mod])
        assert len(findings) == 1
        assert "no __all__" in findings[0].message


class TestRL004ImportLayering:
    def test_upward_imports_trigger(self):
        mod = load_fixture("rl004_bad_upward.py", module="repro.graph.badmod")
        findings = run_rule("RL004", [mod])
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "sched" in messages
        assert "report" in messages

    def test_cycle_detected(self):
        mods = [
            load_fixture("rl004_cycle_a.py", module="repro.fu.cycle_a"),
            load_fixture("rl004_cycle_b.py", module="repro.fu.cycle_b"),
        ]
        findings = run_rule("RL004", mods)
        assert len(findings) == 1
        assert "import cycle" in findings[0].message
        assert "cycle_a" in findings[0].message
        assert "cycle_b" in findings[0].message

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl004_clean.py", module="repro.sched.goodmod")
        assert run_rule("RL004", [mod]) == []

    def test_unmapped_segment_flagged(self):
        from repro.lintkit import module_from_source

        mod = module_from_source(
            "from repro.newpkg import thing\n",
            module="repro.report.user",
            path="user.py",
        )
        findings = run_rule("RL004", [mod])
        assert len(findings) == 1
        assert "not mapped to a layer" in findings[0].message


class TestRL005SideEffectHygiene:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl005_bad.py", module="repro.sim.fixture")
        findings = run_rule("RL005", [mod])
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "print()" in messages
        assert "sys.stdout.write()" in messages
        assert "deadline" in messages  # the validated parameter

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl005_clean.py", module="repro.sim.fixture")
        assert run_rule("RL005", [mod]) == []

    def test_presentation_layers_exempt(self):
        for module in ("repro.report.fixture", "repro.cli",
                       "repro.lintkit.cli"):
            mod = load_fixture("rl005_bad.py", module=module)
            assert run_rule("RL005", [mod]) == []


class TestRL006SeededGenerator:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl006_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL006", [mod])
        assert len(findings) == 5
        assert all(f.code == "RL006" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "stdlib random" in messages
        assert "np.random.seed" in messages
        assert "np.random.normal" in messages
        assert "numpy.random.rand" in messages

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl006_clean.py", module="repro.assign.fixture")
        assert run_rule("RL006", [mod]) == []

    def test_out_of_scope_layers_exempt(self):
        """Presentation (6+) and substrate (0) layers are not scanned."""
        for module in ("repro.report.fixture", "repro.checkkit.fixture",
                       "repro.obs.fixture", "foreign.module"):
            mod = load_fixture("rl006_bad.py", module=module)
            assert run_rule("RL006", [mod]) == []

    def test_all_numeric_layers_in_scope(self):
        for module in ("repro.graph.fixture", "repro.fu.fixture",
                       "repro.engine.fixture", "repro.sched.fixture",
                       "repro.sim.fixture", "repro.synthesis"):
            mod = load_fixture("rl006_bad.py", module=module)
            assert len(run_rule("RL006", [mod])) == 5

    def test_numpy_random_alias_tracked(self):
        from repro.lintkit import module_from_source

        mod = module_from_source(
            "from numpy import random as npr\n"
            "def f():\n"
            "    return npr.rand()\n",
            module="repro.assign.user",
            path="user.py",
        )
        findings = run_rule("RL006", [mod])
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message


def _parallel_standin():
    return load_fixture("engine_parallel.py", module="repro.engine.parallel")


class TestRL007SpawnSafety:
    def test_bad_fixture_triggers(self):
        mods = [
            _parallel_standin(),
            load_fixture("rl007_bad.py", module="repro.assign.fixture"),
        ]
        findings = run_rule("RL007", mods)
        assert len(findings) == 5
        assert all(f.code == "RL007" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "lambda" in messages
        assert "nested function" in messages
        assert "locally-created object" in messages
        assert "module-level name bound to a lambda" in messages

    def test_clean_fixture_passes(self):
        mods = [
            _parallel_standin(),
            load_fixture("rl007_clean.py", module="repro.assign.fixture"),
        ]
        assert run_rule("RL007", mods) == []

    def test_forwarded_lambda_flagged_at_origin(self):
        """The two-calls-deep lambda is anchored in the fixture module."""
        bad = load_fixture("rl007_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL007", [_parallel_standin(), bad])
        lambda_lines = {
            f.line for f in findings if "lambda" in f.message
        }
        # bad_forwarded's lambda line is distinct from bad_lambda's
        assert len(lambda_lines) >= 2


class TestRL008SharedStateRace:
    def test_bad_fixture_triggers(self):
        mods = [
            _parallel_standin(),
            load_fixture("rl008_bad.py", module="repro.assign.fixture"),
        ]
        findings = run_rule("RL008", mods)
        assert len(findings) == 4
        messages = " | ".join(f.message for f in findings)
        assert "subscript store" in messages
        assert ".append()" in messages
        assert "class 'Config'" in messages
        assert "'global'" in messages

    def test_clean_fixture_passes(self):
        """Writes outside the reachable set (parent_side_reset) pass."""
        mods = [
            _parallel_standin(),
            load_fixture("rl008_clean.py", module="repro.assign.fixture"),
        ]
        assert run_rule("RL008", mods) == []

    def test_spawn_machinery_is_exempt(self):
        """repro.engine.parallel itself may touch its pool registry."""
        from repro.lintkit import module_from_source

        parallel = module_from_source(
            "_POOLS = {}\n"
            "def pmap(fn, items):\n"
            "    _POOLS[id(fn)] = fn\n"
            "    return [fn(x) for x in items]\n",
            module="repro.engine.parallel",
            path="parallel.py",
        )
        user = module_from_source(
            "from .parallel import pmap\n"
            "def work(x):\n"
            "    return x\n"
            "def run(items):\n"
            "    return pmap(work, items)\n",
            module="repro.engine.user",
            path="user.py",
        )
        assert run_rule("RL008", [parallel, user]) == []


class TestRL009ObsHygiene:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl009_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL009", [mod])
        assert len(findings) == 6
        messages = " | ".join(f.message for f in findings)
        assert "f-string" in messages
        assert "context manager" in messages
        assert "does not match the naming pattern" in messages
        assert "module constant" in messages
        assert "no literal default" in messages
        assert "unregistered namespace 'rogue'" in messages

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl009_clean.py", module="repro.assign.fixture")
        assert run_rule("RL009", [mod]) == []

    def test_obs_layer_itself_exempt(self):
        mod = load_fixture("rl009_bad.py", module="repro.obs.fixture")
        assert run_rule("RL009", [mod]) == []


class TestRL010ApiContract:
    def _mods(self, impl_fixture):
        return [
            load_fixture("rl010_init.py", module="repro", is_package=True),
            load_fixture(impl_fixture, module="repro.impl"),
        ]

    def test_bad_fixture_triggers(self):
        findings = run_rule("RL010", self._mods("rl010_bad_impl.py"))
        assert len(findings) == 4
        messages = " | ".join(f.message for f in findings)
        assert "not keyword-only" in messages
        assert "different order" in messages
        assert "no longer exists" in messages
        assert "positional parameter(s)" in messages

    def test_clean_fixture_passes(self):
        assert run_rule("RL010", self._mods("rl010_clean_impl.py")) == []

    def test_facade_anchored_at_definition(self):
        findings = run_rule("RL010", self._mods("rl010_bad_impl.py"))
        facade = [f for f in findings if "facade" in f.message]
        assert len(facade) == 1
        assert facade[0].module == "repro.impl"
