"""Per-rule fixture tests: each rule has a triggering and a clean fixture.

These are the acceptance gates for the rule catalog — editing any
fixture (or breaking any rule) changes an exact expected finding count.
"""

from .conftest import load_fixture, run_rule


class TestRL001ExceptionTaxonomy:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl001_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL001", [mod])
        assert len(findings) == 3
        assert all(f.code == "RL001" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "KeyError" in messages
        assert "ValueError" in messages
        assert "NotAnError" in messages

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl001_clean.py", module="repro.assign.fixture")
        assert run_rule("RL001", [mod]) == []

    def test_taxonomy_crosses_modules(self):
        """A subclass defined in one module is recognized in another."""
        from repro.lintkit import module_from_source

        defs = module_from_source(
            "class ReproError(Exception):\n"
            "    pass\n"
            "class CustomError(ReproError):\n"
            "    pass\n",
            module="repro.errors",
            path="errors.py",
        )
        user = module_from_source(
            "from .errors import CustomError\n"
            "def f():\n"
            "    raise CustomError('x')\n",
            module="repro.graph.user",
            path="user.py",
        )
        assert run_rule("RL001", [defs, user]) == []


class TestRL002FloatEquality:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl002_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL002", [mod])
        assert len(findings) == 3
        assert all(f.code == "RL002" for f in findings)

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl002_clean.py", module="repro.assign.fixture")
        assert run_rule("RL002", [mod]) == []

    def test_out_of_scope_module_exempt(self):
        """The same offending source is fine in the report layer."""
        mod = load_fixture("rl002_bad.py", module="repro.report.fixture")
        assert run_rule("RL002", [mod]) == []

    def test_graph_paths_in_scope(self):
        mod = load_fixture("rl002_bad.py", module="repro.graph.paths")
        assert len(run_rule("RL002", [mod])) == 3


class TestRL003PublicApiSync:
    def test_bad_init_triggers(self):
        mod = load_fixture(
            "rl003_bad_init.py", module="repro.badpkg", is_package=True
        )
        findings = run_rule("RL003", [mod])
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "'ghost'" in messages  # phantom __all__ entry
        assert "'helper'" in messages  # unlisted re-export

    def test_clean_init_passes(self):
        mod = load_fixture(
            "rl003_clean_init.py", module="repro.goodpkg", is_package=True
        )
        assert run_rule("RL003", [mod]) == []

    def test_plain_module_only_checks_resolution(self):
        """Non-__init__ modules may import without re-exporting."""
        mod = load_fixture(
            "rl003_clean_init.py", module="repro.goodmod", is_package=False
        )
        assert run_rule("RL003", [mod]) == []

    def test_init_without_all_flagged(self):
        from repro.lintkit import module_from_source

        mod = module_from_source(
            "from .submodule import helper\n",
            module="repro.pkg",
            path="pkg/__init__.py",
            is_package=True,
        )
        findings = run_rule("RL003", [mod])
        assert len(findings) == 1
        assert "no __all__" in findings[0].message


class TestRL004ImportLayering:
    def test_upward_imports_trigger(self):
        mod = load_fixture("rl004_bad_upward.py", module="repro.graph.badmod")
        findings = run_rule("RL004", [mod])
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "sched" in messages
        assert "report" in messages

    def test_cycle_detected(self):
        mods = [
            load_fixture("rl004_cycle_a.py", module="repro.fu.cycle_a"),
            load_fixture("rl004_cycle_b.py", module="repro.fu.cycle_b"),
        ]
        findings = run_rule("RL004", mods)
        assert len(findings) == 1
        assert "import cycle" in findings[0].message
        assert "cycle_a" in findings[0].message
        assert "cycle_b" in findings[0].message

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl004_clean.py", module="repro.sched.goodmod")
        assert run_rule("RL004", [mod]) == []

    def test_unmapped_segment_flagged(self):
        from repro.lintkit import module_from_source

        mod = module_from_source(
            "from repro.newpkg import thing\n",
            module="repro.report.user",
            path="user.py",
        )
        findings = run_rule("RL004", [mod])
        assert len(findings) == 1
        assert "not mapped to a layer" in findings[0].message


class TestRL005SideEffectHygiene:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl005_bad.py", module="repro.sim.fixture")
        findings = run_rule("RL005", [mod])
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "print()" in messages
        assert "sys.stdout.write()" in messages
        assert "deadline" in messages  # the validated parameter

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl005_clean.py", module="repro.sim.fixture")
        assert run_rule("RL005", [mod]) == []

    def test_presentation_layers_exempt(self):
        for module in ("repro.report.fixture", "repro.cli",
                       "repro.lintkit.cli"):
            mod = load_fixture("rl005_bad.py", module=module)
            assert run_rule("RL005", [mod]) == []


class TestRL006SeededGenerator:
    def test_bad_fixture_triggers(self):
        mod = load_fixture("rl006_bad.py", module="repro.assign.fixture")
        findings = run_rule("RL006", [mod])
        assert len(findings) == 5
        assert all(f.code == "RL006" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "stdlib random" in messages
        assert "np.random.seed" in messages
        assert "np.random.normal" in messages
        assert "numpy.random.rand" in messages

    def test_clean_fixture_passes(self):
        mod = load_fixture("rl006_clean.py", module="repro.assign.fixture")
        assert run_rule("RL006", [mod]) == []

    def test_out_of_scope_layers_exempt(self):
        """Presentation (6+) and substrate (0) layers are not scanned."""
        for module in ("repro.report.fixture", "repro.checkkit.fixture",
                       "repro.obs.fixture", "foreign.module"):
            mod = load_fixture("rl006_bad.py", module=module)
            assert run_rule("RL006", [mod]) == []

    def test_all_numeric_layers_in_scope(self):
        for module in ("repro.graph.fixture", "repro.fu.fixture",
                       "repro.engine.fixture", "repro.sched.fixture",
                       "repro.sim.fixture", "repro.synthesis"):
            mod = load_fixture("rl006_bad.py", module=module)
            assert len(run_rule("RL006", [mod])) == 5

    def test_numpy_random_alias_tracked(self):
        from repro.lintkit import module_from_source

        mod = module_from_source(
            "from numpy import random as npr\n"
            "def f():\n"
            "    return npr.rand()\n",
            module="repro.assign.user",
            path="user.py",
        )
        findings = run_rule("RL006", [mod])
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message
