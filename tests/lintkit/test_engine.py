"""Engine-level tests: suppressions, discovery, rule selection."""

import pytest

from repro.errors import LintError
from repro.lintkit import (
    discover,
    module_from_path,
    module_from_source,
    resolve_rules,
    run_rules,
)

FLOAT_EQ = "def f(err):\n    return err == 0.0\n"


def _lint(source, module="repro.assign.mod", codes=("RL002",)):
    mod = module_from_source(source, module=module, path="mod.py")
    return run_rules([mod], resolve_rules(list(codes)))


class TestInlineSuppression:
    def test_targeted_ignore_suppresses(self):
        src = "def f(err):\n    return err == 0.0  # lint: ignore[RL002]\n"
        findings, suppressed = _lint(src)
        assert findings == []
        assert suppressed == 1

    def test_blanket_ignore_suppresses(self):
        src = "def f(err):\n    return err == 0.0  # lint: ignore\n"
        findings, suppressed = _lint(src)
        assert findings == []
        assert suppressed == 1

    def test_other_code_does_not_suppress(self):
        src = "def f(err):\n    return err == 0.0  # lint: ignore[RL001]\n"
        findings, suppressed = _lint(src)
        assert len(findings) == 1
        assert suppressed == 0

    def test_directive_in_string_is_not_a_suppression(self):
        src = (
            's = "lint: ignore[RL002]"\n'
            "def f(err):\n"
            "    return err == 0.0\n"
        )
        findings, _ = _lint(src)
        assert len(findings) == 1

    def test_multiple_codes_in_one_directive(self):
        src = (
            "def f(err):\n"
            "    return err == 0.0  # lint: ignore[RL001, RL002]\n"
        )
        findings, suppressed = _lint(src)
        assert findings == []
        assert suppressed == 1


class TestDiscovery:
    def test_module_names_from_tree(self, tmp_path):
        pkg = tmp_path / "repro"
        sub = pkg / "assign"
        sub.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (sub / "__init__.py").write_text("")
        (sub / "mod.py").write_text("x = 1\n")
        mods = discover([str(tmp_path / "repro")])
        names = {m.module for m in mods}
        assert names == {"repro", "repro.assign", "repro.assign.mod"}
        init = next(m for m in mods if m.module == "repro.assign")
        assert init.is_package

    def test_single_file(self, tmp_path):
        f = tmp_path / "loose.py"
        f.write_text("x = 1\n")
        info = module_from_path(f)
        assert info.module == "loose"
        assert not info.is_package

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintError):
            discover(["does/not/exist"])

    def test_syntax_error_is_usage_error(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        with pytest.raises(LintError):
            discover([str(tmp_path)])


class TestRuleSelection:
    def test_all_rules_registered(self):
        codes = [r.code for r in resolve_rules()]
        assert codes == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]

    def test_select_subset(self):
        codes = [r.code for r in resolve_rules(["RL002", "RL004"])]
        assert codes == ["RL002", "RL004"]

    def test_ignore_subset(self):
        codes = [r.code for r in resolve_rules(None, ["RL003"])]
        assert codes == ["RL001", "RL002", "RL004", "RL005", "RL006"]

    def test_unknown_code_raises(self):
        with pytest.raises(LintError):
            resolve_rules(["RL999"])
        with pytest.raises(LintError):
            resolve_rules(None, ["BOGUS"])

    def test_select_is_case_insensitive(self):
        codes = [r.code for r in resolve_rules(["rl002"])]
        assert codes == ["RL002"]
