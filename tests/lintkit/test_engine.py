"""Engine-level tests: suppressions, discovery, rule selection."""

import pytest

from repro.errors import LintError
from repro.lintkit import (
    discover,
    module_from_path,
    module_from_source,
    resolve_rules,
    run_rules,
)

FLOAT_EQ = "def f(err):\n    return err == 0.0\n"


def _lint(source, module="repro.assign.mod", codes=("RL002",)):
    mod = module_from_source(source, module=module, path="mod.py")
    return run_rules([mod], resolve_rules(list(codes)))


class TestInlineSuppression:
    def test_targeted_ignore_suppresses(self):
        src = "def f(err):\n    return err == 0.0  # lint: ignore[RL002]\n"
        findings, suppressed = _lint(src)
        assert findings == []
        assert suppressed == 1

    def test_blanket_ignore_suppresses(self):
        src = "def f(err):\n    return err == 0.0  # lint: ignore\n"
        findings, suppressed = _lint(src)
        assert findings == []
        assert suppressed == 1

    def test_other_code_does_not_suppress(self):
        src = "def f(err):\n    return err == 0.0  # lint: ignore[RL001]\n"
        findings, suppressed = _lint(src)
        assert len(findings) == 1
        assert suppressed == 0

    def test_directive_in_string_is_not_a_suppression(self):
        src = (
            's = "lint: ignore[RL002]"\n'
            "def f(err):\n"
            "    return err == 0.0\n"
        )
        findings, _ = _lint(src)
        assert len(findings) == 1

    def test_multiple_codes_in_one_directive(self):
        src = (
            "def f(err):\n"
            "    return err == 0.0  # lint: ignore[RL001, RL002]\n"
        )
        findings, suppressed = _lint(src)
        assert findings == []
        assert suppressed == 1


class TestDiscovery:
    def test_module_names_from_tree(self, tmp_path):
        pkg = tmp_path / "repro"
        sub = pkg / "assign"
        sub.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (sub / "__init__.py").write_text("")
        (sub / "mod.py").write_text("x = 1\n")
        mods = discover([str(tmp_path / "repro")])
        names = {m.module for m in mods}
        assert names == {"repro", "repro.assign", "repro.assign.mod"}
        init = next(m for m in mods if m.module == "repro.assign")
        assert init.is_package

    def test_single_file(self, tmp_path):
        f = tmp_path / "loose.py"
        f.write_text("x = 1\n")
        info = module_from_path(f)
        assert info.module == "loose"
        assert not info.is_package

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintError):
            discover(["does/not/exist"])

    def test_syntax_error_is_usage_error(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        with pytest.raises(LintError):
            discover([str(tmp_path)])


class TestRuleSelection:
    def test_all_rules_registered(self):
        codes = [r.code for r in resolve_rules()]
        assert codes == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
            "RL010",
        ]

    def test_select_subset(self):
        codes = [r.code for r in resolve_rules(["RL002", "RL004"])]
        assert codes == ["RL002", "RL004"]

    def test_ignore_subset(self):
        codes = [r.code for r in resolve_rules(None, ["RL003"])]
        assert codes == [
            "RL001",
            "RL002",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
            "RL010",
        ]

    def test_unknown_code_raises(self):
        with pytest.raises(LintError):
            resolve_rules(["RL999"])
        with pytest.raises(LintError):
            resolve_rules(None, ["BOGUS"])

    def test_select_is_case_insensitive(self):
        codes = [r.code for r in resolve_rules(["rl002"])]
        assert codes == ["RL002"]


class TestMultiLineSuppression:
    """Regression: a directive on a statement's first line covers
    findings anchored at inner nodes on later lines (fixture:
    ``suppress_multiline.py``)."""

    def test_directive_covers_statement_span(self):
        from .conftest import load_fixture

        mod = load_fixture(
            "suppress_multiline.py", module="repro.assign.fixture"
        )
        findings, suppressed = run_rules([mod], resolve_rules(["RL002"]))
        # f() is suppressed despite the == being two lines below the
        # directive; g() (no directive) still fires
        assert suppressed == 1
        assert len(findings) == 1
        assert "def g" in mod.lines[findings[0].line - 1] or findings[0].line > 10

    def test_inline_directive_mid_statement_also_counts(self):
        src = (
            "def f(err):\n"
            "    return (\n"
            "        err\n"
            "        == 0.0  # lint: ignore[RL002]\n"
            "    )\n"
        )
        mod = module_from_source(src, module="repro.assign.m", path="m.py")
        findings, suppressed = run_rules([mod], resolve_rules(["RL002"]))
        assert findings == []
        assert suppressed == 1


class TestLazyDiscovery:
    def test_lazy_modules_hash_without_parsing(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("x = 1\n")
        (mod,) = discover([str(tmp_path)], lazy=True)
        assert mod._tree is None
        assert len(mod.content_hash) == 64
        assert mod._tree is None  # hashing must not force a parse
        mod.tree
        assert mod._tree is not None

    def test_exclude_skips_subtree(self, tmp_path):
        keep = tmp_path / "keep.py"
        keep.write_text("x = 1\n")
        sub = tmp_path / "fixtures"
        sub.mkdir()
        (sub / "skip.py").write_text("y = 2\n")
        mods = discover([str(tmp_path)], exclude=[str(sub)])
        assert [m.module for m in mods] == ["keep"]
