"""The shipped tree must satisfy its own linter — no grandfathering."""

from repro.lintkit import lint_paths
from repro.lintkit.cli import main


class TestShippedTreeIsClean:
    def test_src_repro_lints_clean_without_baseline(self, src_repro):
        """Stronger than the CI gate: zero findings even baseline-free."""
        report = lint_paths([str(src_repro)], use_baseline=False)
        assert report.findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.code} {f.message}" for f in report.findings
        )

    def test_src_repro_lints_clean_via_cli(self, src_repro, capsys):
        assert main([str(src_repro)]) == 0
        capsys.readouterr()

    def test_scan_covers_the_whole_package(self, src_repro):
        report = lint_paths([str(src_repro)], use_baseline=False)
        # ~100 modules today; the floor just guards against discovery
        # silently breaking and "passing" on an empty scan
        assert report.modules_scanned >= 80

    def test_every_rule_runs_on_the_real_tree(self, src_repro):
        """Selecting each rule individually still comes back clean."""
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005",
                     "RL006", "RL007", "RL008", "RL009", "RL010"):
            report = lint_paths(
                [str(src_repro)], select=[code], use_baseline=False
            )
            assert report.findings == [], f"{code} regressed"
