"""Unit tests for the metamorphic relations."""

import pytest

import repro.checkkit.metamorphic as metamorphic_mod
from repro.checkkit.generators import generate
from repro.checkkit.metamorphic import (
    RELATION_CHAIN,
    get_relation,
    relation_names,
    run_relations,
)
from repro.errors import CheckError


class TestRegistry:
    def test_chain_is_registered(self):
        names = relation_names()
        assert list(RELATION_CHAIN) == names

    def test_unknown_relation_raises(self):
        with pytest.raises(CheckError, match="unknown metamorphic relation"):
            get_relation("nope")


class TestRelationsHold:
    @pytest.mark.parametrize("spec", ["path", "out_tree", "dag", "layered"])
    def test_full_chain_clean(self, spec):
        checks = run_relations(generate(spec, 17))
        assert checks  # at least one relation applied

    def test_retiming_applies_only_with_delays(self):
        cyclic = generate("delay_cycle", 5)
        assert cyclic.dfg.total_delays() > 0
        checks = run_relations(cyclic, names=["retiming"])
        assert checks == [
            "retiming preserves feasibility at the original deadline"
        ]
        acyclic = generate("dag", 5)
        assert run_relations(acyclic, names=["retiming"]) == []

    def test_exact_relations_label_the_optimum(self):
        checks = run_relations(generate("out_tree", 1), names=["cost_scaling"])
        assert checks == ["cost scaling by 3.5 scales the optimal cost exactly"]

    def test_single_relation_selection(self):
        checks = run_relations(generate("path", 2), names=["transpose"])
        assert checks == ["transposition preserves the optimal cost"]


class TestViolationsAreCaught:
    def test_broken_optimum_fails_cost_scaling(self, monkeypatch):
        # a constant "optimum" cannot scale with the costs
        monkeypatch.setattr(
            metamorphic_mod, "_optimal_cost", lambda dag, table, deadline: 7.0
        )
        inst = generate("out_tree", 3)
        with pytest.raises(CheckError, match="cost scaling broke"):
            run_relations(inst, names=["cost_scaling"])

    def test_broken_optimum_fails_relabel(self, monkeypatch):
        real = metamorphic_mod._optimal_cost
        calls = []

        def skewed(dag, table, deadline):
            calls.append(dag.name)
            base = real(dag, table, deadline)
            return base + (1.0 if len(calls) > 1 else 0.0)

        monkeypatch.setattr(metamorphic_mod, "_optimal_cost", skewed)
        inst = generate("out_tree", 6)
        with pytest.raises(CheckError, match="relabelling changed"):
            run_relations(inst, names=["relabel"])
