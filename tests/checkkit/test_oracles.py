"""Unit tests for the differential oracle registry."""

import dataclasses

import pytest

import repro.checkkit.oracles as oracles_mod
from repro.checkkit.generators import generate
from repro.checkkit.oracles import (
    CERTIFY_CHAIN,
    FUZZ_CHAIN,
    OracleContext,
    get_oracle,
    oracle_names,
    run_oracles,
)
from repro.errors import CheckError
from repro.fu.random_tables import random_table


def make_table(dfg, seed=0, num_types=3):
    return random_table(dfg, num_types=num_types, seed=seed)


class TestRegistry:
    def test_chains_are_registered(self):
        names = oracle_names()
        for name in FUZZ_CHAIN:
            assert name in names
        assert set(CERTIFY_CHAIN) < set(FUZZ_CHAIN)

    def test_unknown_oracle_raises(self):
        with pytest.raises(CheckError, match="unknown oracle"):
            get_oracle("nope")

    def test_oracles_carry_descriptions(self):
        for name in oracle_names():
            assert get_oracle(name).description


class TestRunOracles:
    def test_chain_on_chain3(self, chain3, chain3_table):
        cert = run_oracles(chain3, chain3_table, 8, names=FUZZ_CHAIN)
        assert cert.deadline == 8
        assert "exact == brute force" in cert.checks
        assert "structure DP == exact" in cert.checks
        assert any("packed kernel" in c for c in cert.checks)

    def test_chain_on_wide_dag(self, wide_dag):
        table = make_table(wide_dag, seed=5)
        from repro.assign.assignment import min_completion_time

        deadline = min_completion_time(wide_dag, table) + 3
        cert = run_oracles(wide_dag, table, deadline, names=FUZZ_CHAIN)
        assert any("incremental sweep == cold sweep" in c for c in cert.checks)

    def test_default_chain_is_certify(self, small_tree):
        table = make_table(small_tree, seed=2)
        cert = run_oracles(small_tree, table, 12)
        assert "heuristics optimal on the tree-shaped instance" in cert.checks
        # default chain excludes the fuzz-only differentials
        assert not any("pmap" in c for c in cert.checks)

    def test_brute_force_limit_gates_the_oracle(self, chain3, chain3_table):
        gated = run_oracles(
            chain3, chain3_table, 8, names=FUZZ_CHAIN, brute_force_limit=0
        )
        assert "exact == brute force" not in gated.checks

    def test_context_shares_expansion(self, chain3, chain3_table):
        ctx = OracleContext(chain3, chain3_table, 8)
        assert ctx.expansion is ctx.expansion
        assert ctx.results is ctx.results


class TestInjectedBugs:
    """A deliberately broken implementation must be caught, not certified."""

    def test_kernel_divergence_is_detected(self, monkeypatch):
        real = oracles_mod.dfg_assign_repeat

        def buggy(dag, table, deadline, **kwargs):
            result = real(dag, table, deadline, **kwargs)
            if kwargs.get("kernel") == "python":
                return dataclasses.replace(result, cost=result.cost + 1.0)
            return result

        monkeypatch.setattr(oracles_mod, "dfg_assign_repeat", buggy)
        inst = generate("dag", 13)
        with pytest.raises(CheckError, match="packed cost"):
            run_oracles(
                inst.dfg, inst.table, inst.deadline, names=("kernels",)
            )

    def test_worker_divergence_is_detected(self, monkeypatch):
        real = oracles_mod.dfg_assign_repeat

        def buggy(dag, table, deadline, **kwargs):
            result = real(dag, table, deadline, **kwargs)
            if kwargs.get("workers"):
                return dataclasses.replace(result, cost=result.cost * 2.0)
            return result

        monkeypatch.setattr(oracles_mod, "dfg_assign_repeat", buggy)
        inst = generate("layered", 4)
        with pytest.raises(CheckError, match="workers=2"):
            run_oracles(
                inst.dfg, inst.table, inst.deadline, names=("workers",)
            )


class TestCertifyFacade:
    """`verify.certify` stays behaviourally identical to its chain."""

    def test_certify_equals_certify_chain(self, small_tree):
        from repro.verify import certify

        table = make_table(small_tree, seed=9)
        via_facade = certify(small_tree, table, 12)
        via_registry = run_oracles(small_tree, table, 12, names=CERTIFY_CHAIN)
        assert via_facade.describe() == via_registry.describe()
