"""Unit tests for the fuzz instance generators."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.checkkit.generators import (
    SPECS,
    generate,
    instance_stream,
    mix_seed,
)
from repro.errors import CheckError


class TestGenerate:
    @pytest.mark.parametrize("spec", SPECS)
    def test_every_spec_builds_a_valid_instance(self, spec):
        inst = generate(spec, 42)
        assert inst.spec == spec
        assert inst.seed == 42
        assert len(inst.dfg) >= 1
        dag = inst.dag()
        # the table covers every node and the deadline is feasible
        assert inst.deadline >= min_completion_time(dag, inst.table)

    @pytest.mark.parametrize("spec", SPECS)
    def test_replayable(self, spec):
        """Equal (spec, seed) pairs yield structurally equal instances."""
        a = generate(spec, 7)
        b = generate(spec, 7)
        assert a.describe() == b.describe()
        assert a.dfg.nodes() == b.dfg.nodes()
        assert a.dfg.edges() == b.dfg.edges()
        assert a.deadline == b.deadline
        for node in a.dfg.nodes():
            assert list(a.table.times(node)) == list(b.table.times(node))
            assert list(a.table.costs(node)) == list(b.table.costs(node))

    def test_different_seeds_differ(self):
        described = {generate("dag", s).describe() for s in range(8)}
        assert len(described) > 1

    def test_unknown_spec_raises(self):
        with pytest.raises(CheckError, match="unknown generator spec"):
            generate("nope", 0)

    def test_delay_cycle_has_delays(self):
        inst = generate("delay_cycle", 3)
        assert inst.dfg.total_delays() >= 1
        # the DAG part is still extractable (every cycle is delayed)
        inst.dag()

    def test_multi_type_varies_type_count(self):
        counts = {generate("multi_type", s).table.num_types for s in range(10)}
        assert counts <= {2, 4, 5}
        assert len(counts) > 1


class TestStream:
    def test_budget_and_round_robin(self):
        instances = list(instance_stream(len(SPECS) * 2, seed=2004))
        assert len(instances) == len(SPECS) * 2
        assert [i.spec for i in instances] == list(SPECS) * 2

    def test_seed_mixing_is_positional(self):
        """Any campaign instance regenerates without replaying the stream."""
        instances = list(instance_stream(5, seed=11))
        for i, inst in enumerate(instances):
            assert inst.seed == mix_seed(11, i)
            assert generate(inst.spec, inst.seed).describe() == inst.describe()

    def test_spec_restriction(self):
        instances = list(instance_stream(4, seed=1, specs=["path"]))
        assert [i.spec for i in instances] == ["path"] * 4

    def test_negative_budget_raises(self):
        with pytest.raises(CheckError, match="budget must be >= 0"):
            list(instance_stream(-1, seed=0))

    def test_unknown_spec_in_stream_raises(self):
        with pytest.raises(CheckError, match="unknown generator spec"):
            list(instance_stream(1, seed=0, specs=["bogus"]))
