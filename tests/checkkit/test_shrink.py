"""Unit tests for the delta-debugging minimizer and its artifacts."""

import dataclasses
import json

import pytest

import repro.checkkit.oracles as oracles_mod
from repro.checkkit.generators import generate
from repro.checkkit.shrink import (
    from_json,
    oracle_predicate,
    replay_json,
    shrink,
    to_json,
    to_pytest,
)
from repro.errors import CheckError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.suite.synthetic import random_dag


def _structural_predicate(dfg, table, deadline):
    """A synthetic bug: fails whenever the graph still has >= 2 nodes."""
    if len(dfg) >= 2:
        return f"bug with {len(dfg)} nodes"
    return None


class TestShrink:
    def test_reduces_to_local_minimum(self):
        dfg = random_dag(10, edge_prob=0.3, seed=1)
        table = random_table(dfg, num_types=3, seed=1)
        outcome = shrink(dfg, table, 20, _structural_predicate)
        assert outcome.num_nodes == 2
        assert outcome.message == "bug with 2 nodes"
        assert outcome.rounds >= 1
        assert outcome.attempts >= 1

    def test_passing_instance_is_rejected(self):
        dfg = DFG(name="one")
        dfg.add_node("x", op="add")
        table = random_table(dfg, num_types=3, seed=0)
        with pytest.raises(CheckError, match="passing instance"):
            shrink(dfg, table, 10, _structural_predicate)

    def test_attempt_budget_bounds_the_search(self):
        dfg = random_dag(10, edge_prob=0.3, seed=2)
        table = random_table(dfg, num_types=3, seed=2)
        outcome = shrink(dfg, table, 20, _structural_predicate, max_attempts=3)
        assert outcome.attempts <= 3

    def test_deadline_and_types_are_minimized(self):
        dfg = random_dag(6, edge_prob=0.3, seed=3)
        table = random_table(dfg, num_types=3, seed=3)
        outcome = shrink(dfg, table, 25, _structural_predicate)
        # the synthetic bug ignores the deadline and the table, so both
        # shrink all the way down
        assert outcome.deadline == 0
        assert outcome.table.num_types == 1


class TestInjectedKernelBugShrinks:
    """Acceptance: a monkeypatched kernel bug shrinks to <= 8 nodes."""

    def test_kernel_bug_is_caught_and_shrunk(self, monkeypatch):
        real = oracles_mod.dfg_assign_repeat

        def buggy(dag, table, deadline, **kwargs):
            result = real(dag, table, deadline, **kwargs)
            if kwargs.get("kernel") == "python":
                return dataclasses.replace(result, cost=result.cost + 1.0)
            return result

        monkeypatch.setattr(oracles_mod, "dfg_assign_repeat", buggy)
        dfg = random_dag(12, edge_prob=0.25, seed=8)
        table = random_table(dfg, num_types=3, seed=8)
        predicate = oracle_predicate(("kernels",), brute_force_limit=0)
        message = predicate(dfg, table, 30)
        assert message is not None and "packed cost" in message
        outcome = shrink(dfg, table, 30, predicate)
        assert outcome.num_nodes <= 8
        assert "packed cost" in outcome.message
        # the shrunk instance still reproduces
        assert predicate(outcome.dfg, outcome.table, outcome.deadline)


class TestArtifacts:
    def _roundtrip_instance(self):
        inst = generate("dag", 21)
        return inst.dfg, inst.table, inst.deadline

    def test_json_roundtrip(self):
        dfg, table, deadline = self._roundtrip_instance()
        text = to_json(
            dfg, table, deadline, spec="dag", seed=21, message="m"
        )
        doc = json.loads(text)
        assert doc["checkkit_reproducer"] == 1
        back_dfg, back_table, back_deadline, meta = from_json(text)
        assert back_deadline == deadline
        assert sorted(back_dfg.nodes()) == sorted(dfg.nodes())
        assert sorted(back_dfg.edges()) == sorted(dfg.edges())
        for node in dfg.nodes():
            assert list(back_table.times(node)) == list(table.times(node))
        assert meta["spec"] == "dag"

    def test_json_is_stable(self):
        dfg, table, deadline = self._roundtrip_instance()
        assert to_json(dfg, table, deadline) == to_json(dfg, table, deadline)

    def test_malformed_json_raises(self):
        with pytest.raises(CheckError, match="malformed reproducer JSON"):
            from_json("{nope")
        with pytest.raises(CheckError, match="not a checkkit reproducer"):
            from_json('{"other": 1}')

    def test_replay_json_passes_on_healthy_code(self):
        dfg, table, deadline = self._roundtrip_instance()
        text = to_json(
            dfg,
            table,
            deadline,
            oracles=("portfolio", "ordering"),
            relations=("transpose",),
        )
        checks = replay_json(text)
        assert any("algorithms feasible" in c for c in checks)
        assert "transposition preserves the optimal cost" in checks

    def test_replay_json_raises_while_bug_reproduces(self, monkeypatch):
        real = oracles_mod.dfg_assign_repeat

        def buggy(dag, table, deadline, **kwargs):
            result = real(dag, table, deadline, **kwargs)
            if kwargs.get("kernel") == "python":
                return dataclasses.replace(result, cost=result.cost + 1.0)
            return result

        dfg, table, deadline = self._roundtrip_instance()
        text = to_json(dfg, table, deadline, oracles=("kernels",))
        monkeypatch.setattr(oracles_mod, "dfg_assign_repeat", buggy)
        with pytest.raises(CheckError, match="packed cost"):
            replay_json(text)

    def test_to_pytest_emits_runnable_module(self):
        dfg, table, deadline = self._roundtrip_instance()
        text = to_json(dfg, table, deadline, oracles=("portfolio",))
        module = to_pytest(text, "dag_21")
        assert "def test_dag_21():" in module
        assert "replay_json(REPRODUCER)" in module
        namespace = {}
        exec(compile(module, "<reproducer>", "exec"), namespace)
        namespace["test_dag_21"]()

    def test_to_pytest_rejects_bad_names(self):
        dfg, table, deadline = self._roundtrip_instance()
        text = to_json(dfg, table, deadline)
        with pytest.raises(CheckError, match="not a valid identifier"):
            to_pytest(text, "bad name")

    def test_non_string_nodes_are_rejected(self):
        dfg = DFG(name="ints")
        dfg.add_node(1, op="add")
        table = random_table(dfg, num_types=2, seed=0)
        with pytest.raises(CheckError, match="string node ids"):
            to_json(dfg, table, 5)
