"""Unit tests for the fuzz campaign runner."""

import dataclasses
import json

import pytest

import repro.checkkit.oracles as oracles_mod
from repro.checkkit.runner import run_fuzz
from repro.errors import CheckError


class TestCleanCampaign:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(budget=7, seed=2004)
        assert report.exit_code == 0
        assert report.instances == 7
        assert report.oracle_checks > 0
        assert report.relation_checks > 0
        assert not report.failures
        assert report.describe().endswith("verdict: clean")

    def test_determinism(self):
        a = run_fuzz(budget=7, seed=2004)
        b = run_fuzz(budget=7, seed=2004)
        assert a.describe() == b.describe()

    def test_zero_budget(self):
        report = run_fuzz(budget=0, seed=1)
        assert report.instances == 0
        assert report.exit_code == 0

    def test_spec_restriction_shows_in_report(self):
        report = run_fuzz(budget=2, seed=1, specs=["path"])
        assert report.specs == ("path",)
        assert "specs [path]" in report.describe()

    def test_bad_budget_raises(self):
        with pytest.raises(CheckError, match="budget must be >= 0"):
            run_fuzz(budget=-1, seed=0)

    @pytest.mark.fuzz
    def test_medium_campaign_is_clean(self):
        report = run_fuzz(budget=30, seed=2004)
        assert report.exit_code == 0
        assert report.instances == 30


def _install_kernel_bug(monkeypatch):
    real = oracles_mod.dfg_assign_repeat

    def buggy(dag, table, deadline, **kwargs):
        result = real(dag, table, deadline, **kwargs)
        if kwargs.get("kernel") == "python":
            return dataclasses.replace(result, cost=result.cost + 1.0)
        return result

    monkeypatch.setattr(oracles_mod, "dfg_assign_repeat", buggy)


class TestFailingCampaign:
    def test_failures_are_shrunk_and_reported(self, monkeypatch):
        _install_kernel_bug(monkeypatch)
        report = run_fuzz(
            budget=2,
            seed=2004,
            oracle_chain=("kernels",),
            relation_chain=(),
        )
        assert report.exit_code == 1
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.kind == "oracle"
            assert "packed cost" in failure.message
            assert failure.shrunk is not None
            assert failure.shrunk.num_nodes <= 8
            doc = json.loads(failure.reproducer)
            assert doc["oracles"] == ["kernels"]
        text = report.describe()
        assert "verdict: FAILURES" in text
        assert "[fail] #0" in text

    def test_max_failures_aborts_early(self, monkeypatch):
        _install_kernel_bug(monkeypatch)
        report = run_fuzz(
            budget=10,
            seed=2004,
            oracle_chain=("kernels",),
            relation_chain=(),
            max_failures=1,
        )
        assert len(report.failures) == 1
        assert report.stopped_early
        assert report.instances < 10
        assert "aborted after" in report.describe()

    def test_artifacts_written_to_out_dir(self, monkeypatch, tmp_path):
        _install_kernel_bug(monkeypatch)
        report = run_fuzz(
            budget=1,
            seed=2004,
            oracle_chain=("kernels",),
            relation_chain=(),
            out_dir=tmp_path,
        )
        (failure,) = report.failures
        assert len(failure.artifact_paths) == 2
        json_path, py_path = failure.artifact_paths
        assert json_path.endswith(".json") and py_path.endswith(".py")
        doc = json.loads(open(json_path, encoding="utf-8").read())
        assert doc["checkkit_reproducer"] == 1
        module = open(py_path, encoding="utf-8").read()
        assert "replay_json" in module

    def test_metamorphic_failures_have_relation_kind(self, monkeypatch):
        import repro.checkkit.metamorphic as metamorphic_mod

        monkeypatch.setattr(
            metamorphic_mod, "_optimal_cost", lambda dag, table, deadline: 7.0
        )
        report = run_fuzz(
            budget=2,
            seed=2004,
            specs=["out_tree"],
            oracle_chain=(),
            relation_chain=("cost_scaling",),
        )
        assert report.exit_code == 1
        assert all(f.kind == "relation" for f in report.failures)


class TestObservability:
    def test_counters_and_spans(self):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            run_fuzz(budget=2, seed=3)
        counters = tracer.metrics.counters
        assert counters["checkkit.instances"].value == 2
        assert counters["checkkit.checks"].value > 0
        names = {span.name for span in tracer.roots}
        assert "checkkit.fuzz" in names
