"""checkkit CLI tests: exit codes, pinned messages, forwarding."""

import pytest

import repro.checkkit.cli as cli_mod
from repro.checkkit.cli import main
from repro.checkkit.runner import FuzzFailure, FuzzReport


class TestExitCodes:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["--budget", "3", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "checkkit fuzz: budget 3, seed 7" in out
        assert out.strip().endswith("verdict: clean")

    def test_negative_budget_exits_two(self, capsys):
        assert main(["--budget", "-1"]) == 2
        assert "error: budget must be >= 0, got -1" in capsys.readouterr().err

    def test_bad_max_failures_exits_two(self, capsys):
        assert main(["--max-failures", "0"]) == 2
        err = capsys.readouterr().err
        assert "error: max-failures must be >= 1, got 0" in err

    def test_unknown_suite_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--suite", "bogus"])
        assert exc.value.code == 2

    def test_failures_exit_one(self, capsys, monkeypatch):
        report = FuzzReport(budget=1, seed=1, specs=("dag",))
        report.instances = 1
        report.failures.append(
            FuzzFailure(
                index=0,
                spec="dag",
                seed=1,
                kind="oracle",
                message="boom",
                shrunk=None,
                reproducer="{}",
                artifact_paths=("out/repro_dag_1.json",),
            )
        )
        monkeypatch.setattr(cli_mod, "run_fuzz", lambda *a, **k: report)
        assert main(["--budget", "1"]) == 1
        out = capsys.readouterr().out
        assert "verdict: FAILURES" in out
        assert "wrote out/repro_dag_1.json" in out


class TestModes:
    def test_list_suites(self, capsys):
        assert main(["--list-suites"]) == 0
        out = capsys.readouterr().out
        assert "generator specs:" in out
        assert "delay_cycle" in out
        assert "oracles:" in out and "kernels" in out
        assert "metamorphic relations:" in out and "retiming" in out

    def test_replay_prints_the_instance(self, capsys):
        assert main(["--replay", "dag", "7"]) == 0
        assert capsys.readouterr().out.startswith("dag/7:")

    def test_replay_bad_seed_exits_two(self, capsys):
        assert main(["--replay", "dag", "x"]) == 2
        err = capsys.readouterr().err
        assert "error: --replay seed must be an integer, got 'x'" in err

    def test_replay_unknown_spec_exits_two(self, capsys):
        assert main(["--replay", "bogus", "1"]) == 2
        assert "error: unknown generator spec" in capsys.readouterr().err

    def test_suite_restriction(self, capsys):
        assert main(["--budget", "2", "--seed", "1", "--suite", "path"]) == 0
        assert "specs [path]" in capsys.readouterr().out
