"""Unit tests for the functional simulator."""

import pytest

from repro.errors import ScheduleError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.sim.functional import simulate, simulate_schedule


class TestReferenceSimulation:
    def test_add_chain_accumulates(self):
        dfg = DFG.from_edges([("a", "b"), ("b", "c")])
        trace = simulate(dfg, 1, inputs={"a": [5.0]})
        assert trace["a"] == [5.0]
        assert trace["b"] == [5.0]
        assert trace["c"] == [5.0]

    def test_mul_semantics(self):
        dfg = DFG.from_edges(
            [("x", "p"), ("y", "p")], ops={"x": "add", "y": "add", "p": "mul"}
        )
        trace = simulate(dfg, 1, inputs={"x": [3.0], "y": [4.0]})
        assert trace["p"] == [12.0]

    def test_sub_semantics(self):
        dfg = DFG.from_edges(
            [("x", "d"), ("y", "d")], ops={"x": "add", "y": "add", "d": "sub"}
        )
        trace = simulate(dfg, 1, inputs={"x": [10.0], "y": [3.0]})
        assert trace["d"] == [7.0]

    def test_cmp_semantics(self):
        dfg = DFG.from_edges(
            [("x", "c"), ("y", "c")], ops={"x": "add", "y": "add", "c": "cmp"}
        )
        trace = simulate(dfg, 2, inputs={"x": [1.0, 5.0], "y": [2.0, 2.0]})
        assert trace["c"] == [1.0, 0.0]

    def test_delayed_edge_reads_previous_iteration(self):
        # y[n] = x[n] + y[n-1]: a running sum
        dfg = DFG(name="acc")
        dfg.add_node("y", op="add")
        dfg.add_edge("y", "y", 1)
        trace = simulate(dfg, 4, inputs={"y": [1.0, 2.0, 3.0, 4.0]})
        assert trace["y"] == [1.0, 3.0, 6.0, 10.0]

    def test_initial_register_value(self):
        dfg = DFG(name="acc")
        dfg.add_node("y", op="add")
        dfg.add_edge("y", "y", 1)
        trace = simulate(dfg, 2, inputs={"y": [0.0, 0.0]}, initial=100.0)
        assert trace["y"][0] == 100.0

    def test_two_delay_edge(self):
        dfg = DFG(name="acc2")
        dfg.add_node("y", op="add")
        dfg.add_edge("y", "y", 2)
        trace = simulate(dfg, 4, inputs={"y": [1.0, 1.0, 1.0, 1.0]})
        assert trace["y"] == [1.0, 1.0, 2.0, 2.0]

    def test_short_input_stream_pads_zero(self):
        dfg = DFG()
        dfg.add_node("a", op="add")
        trace = simulate(dfg, 3, inputs={"a": [7.0]})
        assert trace["a"] == [7.0, 0.0, 0.0]

    def test_zero_iterations(self):
        dfg = DFG()
        dfg.add_node("a")
        assert simulate(dfg, 0) == {"a": []}

    def test_negative_iterations(self):
        dfg = DFG()
        dfg.add_node("a")
        with pytest.raises(ScheduleError):
            simulate(dfg, -1)


class TestScheduleSimulation:
    def _synthesized(self, name, seed=24, extra=4):
        from repro.assign.assignment import min_completion_time
        from repro.suite.registry import get_benchmark
        from repro.synthesis import synthesize

        dfg = get_benchmark(name)
        dag = dfg.dag()
        table = random_table(dag, num_types=3, seed=seed)
        deadline = min_completion_time(dag, table) + extra
        result = synthesize(dfg, table, deadline)
        return dfg, table, result

    @pytest.mark.parametrize("name", ["lattice4", "diffeq", "elliptic"])
    def test_schedule_computes_reference_values(self, name):
        """The semantic core: replaying the synthesized schedule yields
        exactly the reference evaluation's numbers."""
        dfg, table, result = self._synthesized(name)
        inputs = {
            n: [float(i + 1) for i in range(3)] for n in dfg.dag().roots()
        }
        ref = simulate(dfg, 3, inputs=inputs)
        got = simulate_schedule(
            dfg, table, result.assignment, result.schedule, 3, inputs=inputs
        )
        assert got == ref

    def test_cyclic_benchmark_with_state(self):
        dfg, table, result = self._synthesized("biquad2")
        inputs = {n: [1.0, 0.0, 0.0, 0.0] for n in dfg.dag().roots()}
        ref = simulate(dfg, 4, inputs=inputs)
        got = simulate_schedule(
            dfg, table, result.assignment, result.schedule, 4, inputs=inputs
        )
        assert got == ref

    def test_rejects_forwarding_too_early(self):
        """A hand-built schedule that starts a consumer before its
        producer completes must be rejected by the scoreboard (it also
        fails structural validation, which fires first)."""
        from repro.assign.assignment import Assignment
        from repro.fu.table import TimeCostTable
        from repro.sched.schedule import Configuration, Schedule, ScheduledOp

        dfg = DFG.from_edges([("a", "b")])
        table = TimeCostTable.from_rows(
            {"a": ([3], [1.0]), "b": ([1], [1.0])}
        )
        assignment = Assignment.of({"a": 0, "b": 0})
        bad = Schedule(
            ops={"a": ScheduledOp(0, 0, 0), "b": ScheduledOp(1, 0, 1)},
            configuration=Configuration.of([2]),
            deadline=10,
        )
        with pytest.raises(ScheduleError):
            simulate_schedule(dfg, table, assignment, bad, 1)

    def test_force_directed_schedule_same_semantics(self):
        from repro.assign.assignment import min_completion_time
        from repro.assign.dfg_assign import dfg_assign_repeat
        from repro.sched.force_directed import force_directed_schedule
        from repro.suite.registry import get_benchmark

        dfg = get_benchmark("diffeq")
        dag = dfg.dag()
        table = random_table(dag, num_types=3, seed=1)
        deadline = min_completion_time(dag, table) + 3
        assignment = dfg_assign_repeat(dag, table, deadline).assignment
        schedule = force_directed_schedule(dag, table, assignment, deadline)
        inputs = {n: [2.0, -1.0] for n in dag.roots()}
        assert simulate_schedule(
            dfg, table, assignment, schedule, 2, inputs=inputs
        ) == simulate(dfg, 2, inputs=inputs)
