"""Unit tests for signal generators and stream metrics."""

import math

import pytest

from repro.errors import ReproError
from repro.sim.signals import (
    impulse,
    mse,
    sine,
    snr_db,
    step,
    streams_equal,
    white_noise,
)


class TestGenerators:
    def test_impulse(self):
        assert impulse(4) == [1.0, 0.0, 0.0, 0.0]
        assert impulse(3, amplitude=2.5)[0] == 2.5
        assert impulse(0) == []

    def test_step(self):
        assert step(3, amplitude=2.0) == [2.0, 2.0, 2.0]

    def test_sine_period(self):
        s = sine(8, period=8.0)
        assert s[0] == pytest.approx(0.0)
        assert s[2] == pytest.approx(1.0)
        assert s[6] == pytest.approx(-1.0)

    def test_sine_bad_period(self):
        with pytest.raises(ReproError):
            sine(4, period=0)

    def test_white_noise_bounded_and_seeded(self):
        a = white_noise(100, amplitude=3.0, seed=1)
        b = white_noise(100, amplitude=3.0, seed=1)
        assert a == b
        assert all(-3.0 <= x <= 3.0 for x in a)
        assert white_noise(100, seed=2) != a

    def test_negative_length(self):
        with pytest.raises(ReproError):
            impulse(-1)


class TestMetrics:
    def test_mse_zero_for_identical(self):
        assert mse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mse_value(self):
        assert mse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(12.5)

    def test_mse_length_mismatch(self):
        with pytest.raises(ReproError):
            mse([1.0], [1.0, 2.0])

    def test_mse_empty(self):
        assert mse([], []) == 0.0

    def test_snr_infinite_on_match(self):
        assert snr_db([1.0, 2.0], [1.0, 2.0]) == float("inf")

    def test_snr_value(self):
        # power 1, error power 0.01 -> 20 dB
        ref = [1.0] * 10
        test = [1.1] * 10
        assert snr_db(ref, test) == pytest.approx(20.0, abs=1e-6)

    def test_snr_undefined_zero_reference(self):
        with pytest.raises(ReproError):
            snr_db([0.0, 0.0], [1.0, 1.0])

    def test_streams_equal(self):
        assert streams_equal([1.0], [1.0 + 1e-12])
        assert not streams_equal([1.0], [1.1])
        assert not streams_equal([1.0], [1.0, 2.0])


class TestSnrNearZero:
    """Regression: the exact `err == 0.0` / `power == 0.0` guards
    (lintkit's first real RL002 catch) misjudged near-zero streams."""

    def test_rounding_noise_counts_as_match(self):
        """Streams differing only by double rounding → inf, not ~300 dB."""
        ref = sine(64, period=8.0)
        test = [x * (1.0 + 1e-15) for x in ref]
        assert snr_db(ref, test) == float("inf")

    def test_tiny_amplitude_exact_match(self):
        ref = [1e-150] * 8
        assert snr_db(ref, list(ref)) == float("inf")

    def test_vanishing_error_on_powerless_reference(self):
        """Zero reference with sub-epsilon residue is a match, not an error."""
        assert snr_db([0.0] * 4, [1e-160] * 4) == float("inf")

    def test_powerless_reference_with_real_error_still_raises(self):
        with pytest.raises(ReproError):
            snr_db([0.0] * 4, [1e-3] * 4)

    def test_real_small_error_stays_finite(self):
        """A genuine 1e-9 relative error must not be rounded up to inf."""
        ref = [1.0] * 16
        test = [1.0 + 1e-9] * 16
        got = snr_db(ref, test)
        assert got == pytest.approx(180.0, abs=1.0)


class TestWithSimulator:
    def test_sine_through_accumulator(self):
        """Running sum of a sine over a full period returns ~0."""
        from repro.graph.dfg import DFG
        from repro.sim.functional import simulate

        dfg = DFG()
        dfg.add_node("y", op="add")
        dfg.add_edge("y", "y", 1)
        xs = sine(16, period=16.0)
        trace = simulate(dfg, 16, inputs={"y": xs})
        assert trace["y"][-1] == pytest.approx(sum(xs))
        assert abs(trace["y"][-1]) < 1e-9

    def test_schedule_replay_has_infinite_snr(self):
        from repro import min_completion_time, synthesize
        from repro.fu.random_tables import random_table
        from repro.sim.functional import simulate, simulate_schedule
        from repro.suite.registry import get_benchmark

        dfg = get_benchmark("fir8")
        dag = dfg.dag()
        table = random_table(dag, seed=1)
        result = synthesize(dfg, table, min_completion_time(dag, table) + 3)
        inputs = {n: white_noise(5, seed=3) for n in dag.roots()}
        ref = simulate(dfg, 5, inputs=inputs)
        got = simulate_schedule(
            dfg, table, result.assignment, result.schedule, 5, inputs=inputs
        )
        out = dag.leaves()[0]
        assert snr_db(ref[out], got[out]) == float("inf")
