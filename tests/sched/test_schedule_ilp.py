"""Unit tests for the time-indexed scheduling ILP model."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.errors import ScheduleError
from repro.fu.random_tables import random_table
from repro.sched.force_directed import force_directed_schedule
from repro.sched.ilp_model import build_schedule_ilp, check_schedule_solution
from repro.sched.min_resource import min_resource_schedule
from repro.suite.registry import get_benchmark
from repro.suite.synthetic import random_dag


@pytest.fixture
def instance():
    dfg = random_dag(9, edge_prob=0.3, seed=4)
    table = random_table(dfg, num_types=3, seed=4)
    deadline = min_completion_time(dfg, table) + 3
    assignment = dfg_assign_repeat(dfg, table, deadline).assignment
    return dfg, table, assignment, deadline


class TestModelShape:
    def test_one_y_per_frame_slot(self, instance):
        dfg, table, assignment, deadline = instance
        model = build_schedule_ilp(dfg, table, assignment, deadline)
        expected = sum(hi - lo + 1 for lo, hi in model.frames.values())
        assert len(model.binaries) == expected
        assert len(model.integers) == table.num_types

    def test_objective_counts_fus(self, instance):
        dfg, table, assignment, deadline = instance
        model = build_schedule_ilp(dfg, table, assignment, deadline)
        assert set(model.objective) == set(model.integers)
        assert all(w == 1.0 for w in model.objective.values())

    def test_custom_weights(self, instance):
        dfg, table, assignment, deadline = instance
        model = build_schedule_ilp(
            dfg, table, assignment, deadline, weights=[3.0, 2.0, 1.0]
        )
        assert model.objective["N_0"] == 3.0

    def test_weight_length_mismatch(self, instance):
        dfg, table, assignment, deadline = instance
        with pytest.raises(ScheduleError):
            build_schedule_ilp(dfg, table, assignment, deadline, weights=[1.0])

    def test_infeasible_deadline(self, instance):
        dfg, table, assignment, _ = instance
        with pytest.raises(ScheduleError):
            build_schedule_ilp(dfg, table, assignment, 0)


class TestCheckSolution:
    def test_min_resource_schedule_is_feasible_point(self, instance):
        dfg, table, assignment, deadline = instance
        model = build_schedule_ilp(dfg, table, assignment, deadline)
        schedule = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
        objective = check_schedule_solution(
            model, dfg, table, assignment, schedule
        )
        assert objective == pytest.approx(
            schedule.configuration.total_units()
        )

    def test_force_directed_schedule_is_feasible_point(self, instance):
        dfg, table, assignment, deadline = instance
        model = build_schedule_ilp(dfg, table, assignment, deadline)
        schedule = force_directed_schedule(dfg, table, assignment, deadline)
        check_schedule_solution(model, dfg, table, assignment, schedule)

    def test_oversized_configuration_still_feasible(self, instance):
        """Extra FUs never violate the model (only cost more)."""
        from repro.sched.schedule import Configuration

        dfg, table, assignment, deadline = instance
        model = build_schedule_ilp(dfg, table, assignment, deadline)
        schedule = min_resource_schedule(
            dfg,
            table,
            assignment=assignment,
            deadline=deadline,
            initial=Configuration.of([5] * table.num_types),
        )
        objective = check_schedule_solution(
            model, dfg, table, assignment, schedule
        )
        assert objective >= 15.0

    def test_benchmark_scale(self):
        dfg = get_benchmark("elliptic").dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 5
        assignment = dfg_assign_repeat(dfg, table, deadline).assignment
        model = build_schedule_ilp(dfg, table, assignment, deadline)
        schedule = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
        check_schedule_solution(model, dfg, table, assignment, schedule)
        assert model.num_constraints() > 0
