"""Unit tests for force-directed scheduling (Paulin–Knight)."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.errors import ScheduleError
from repro.fu.random_tables import random_table
from repro.sched.force_directed import force_directed_schedule
from repro.sched.lower_bound import lower_bound_configuration
from repro.sched.min_resource import min_resource_schedule
from repro.suite.registry import get_benchmark
from repro.suite.synthetic import random_dag


class TestValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_within_deadline(self, seed):
        dfg = random_dag(10, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 4):
            assignment = dfg_assign_repeat(dfg, table, deadline).assignment
            sched = force_directed_schedule(dfg, table, assignment, deadline)
            sched.validate(dfg, table, assignment)
            assert sched.makespan(table) <= deadline

    def test_respects_lower_bound(self):
        dfg = random_dag(12, edge_prob=0.3, seed=3)
        table = random_table(dfg, num_types=3, seed=3)
        deadline = min_completion_time(dfg, table) + 3
        assignment = dfg_assign_repeat(dfg, table, deadline).assignment
        lb = lower_bound_configuration(dfg, table, assignment, deadline)
        sched = force_directed_schedule(dfg, table, assignment, deadline)
        assert lb.dominates(sched.configuration)

    def test_infeasible_deadline(self, chain3):
        table = random_table(chain3, seed=0)
        assignment = Assignment.cheapest(chain3, table)
        with pytest.raises(ScheduleError):
            force_directed_schedule(chain3, table, assignment, 1)

    def test_zero_mobility_instance(self, chain3):
        """At the exact critical-path deadline every frame is a point."""
        table = random_table(chain3, seed=1)
        assignment = Assignment.fastest(chain3, table)
        deadline = assignment.completion_time(chain3, table)
        sched = force_directed_schedule(chain3, table, assignment, deadline)
        sched.validate(chain3, table, assignment)
        assert sched.makespan(table) == deadline


class TestBalancing:
    def test_spreads_independent_work(self):
        """FDS's whole point: independent identical ops spread across
        the window instead of piling up, shrinking the configuration."""
        from repro.graph.dfg import DFG
        from repro.fu.table import TimeCostTable

        w = 4
        dfg = DFG()
        for i in range(w):
            dfg.add_node(f"v{i}")
        table = TimeCostTable.from_rows({f"v{i}": ([1], [1.0]) for i in range(w)})
        assignment = Assignment.of({f"v{i}": 0 for i in range(w)})
        sched = force_directed_schedule(dfg, table, assignment, w)
        sched.validate(dfg, table, assignment)
        # with w steps for w unit ops, perfect balance needs 1 instance
        assert sched.configuration.counts[0] == 1

    @pytest.mark.parametrize("name", ["lattice4", "diffeq", "elliptic"])
    def test_comparable_to_min_resource_on_benchmarks(self, name):
        """FDS should land in the same resource ballpark as Min_R —
        within 2x on the benchmark suite (they optimize the same thing
        with different strategies)."""
        dfg = get_benchmark(name).dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 4
        assignment = dfg_assign_repeat(dfg, table, deadline).assignment
        fds = force_directed_schedule(dfg, table, assignment, deadline)
        minr = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
        fds.validate(dfg, table, assignment)
        assert (
            fds.configuration.total_units()
            <= 2 * minr.configuration.total_units()
        )

    def test_deterministic(self):
        dfg = random_dag(9, edge_prob=0.3, seed=6)
        table = random_table(dfg, num_types=3, seed=6)
        deadline = min_completion_time(dfg, table) + 3
        assignment = dfg_assign_repeat(dfg, table, deadline).assignment
        s1 = force_directed_schedule(dfg, table, assignment, deadline)
        s2 = force_directed_schedule(dfg, table, assignment, deadline)
        assert s1.ops == s2.ops
