"""Unit tests for Min_R_Scheduling and the fixed-configuration scheduler."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.errors import ScheduleError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.sched.lower_bound import lower_bound_configuration
from repro.sched.min_resource import list_schedule, min_resource_schedule
from repro.sched.schedule import Configuration
from repro.suite.synthetic import random_dag


class TestMinResource:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_and_within_deadline(self, seed):
        dfg = random_dag(11, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 3, floor + 10):
            assignment = dfg_assign_repeat(dfg, table, deadline).assignment
            sched = min_resource_schedule(dfg, table, assignment=assignment, deadline=deadline)
            sched.validate(dfg, table, assignment)
            assert sched.makespan(table) <= deadline

    @pytest.mark.parametrize("seed", range(10))
    def test_configuration_at_least_lower_bound(self, seed):
        dfg = random_dag(11, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        assignment = dfg_assign_repeat(dfg, table, floor + 2).assignment
        lb = lower_bound_configuration(dfg, table, assignment, floor + 2)
        sched = min_resource_schedule(dfg, table, assignment=assignment, deadline=floor + 2)
        assert lb.dominates(sched.configuration)

    def test_chain_uses_single_units(self, chain3):
        table = random_table(chain3, seed=0)
        assignment = Assignment.fastest(chain3, table)
        deadline = assignment.completion_time(chain3, table)
        sched = min_resource_schedule(chain3, table, assignment=assignment, deadline=deadline)
        assert all(c <= 1 for c in sched.configuration.counts)

    def test_relaxed_deadline_never_more_resource_than_tight(self):
        """More slack lets the scheduler serialize onto fewer units."""
        dfg = random_dag(12, edge_prob=0.25, seed=3)
        table = random_table(dfg, num_types=3, seed=3)
        floor = min_completion_time(dfg, table)
        assignment = dfg_assign_repeat(dfg, table, floor).assignment
        tight = min_resource_schedule(dfg, table, assignment=assignment, deadline=floor)
        loose = min_resource_schedule(
            dfg, table, assignment=assignment, deadline=floor + 20
        )
        assert (
            loose.configuration.total_units()
            <= tight.configuration.total_units()
        )

    def test_initial_configuration_respected(self, chain3):
        table = random_table(chain3, seed=1)
        assignment = Assignment.fastest(chain3, table)
        deadline = assignment.completion_time(chain3, table) + 5
        big = Configuration.of([4, 4, 4])
        sched = min_resource_schedule(
            chain3, table, assignment=assignment, deadline=deadline, initial=big
        )
        # provided instances are kept (the algorithm only ever grows)
        assert sched.configuration.counts == (4, 4, 4)

    def test_initial_size_mismatch(self, chain3):
        table = random_table(chain3, seed=1)
        assignment = Assignment.fastest(chain3, table)
        with pytest.raises(ScheduleError):
            min_resource_schedule(
                chain3,
                table,
                assignment=assignment,
                deadline=20,
                initial=Configuration.of([1]),
            )

    def test_infeasible_deadline(self, chain3):
        table = random_table(chain3, seed=2)
        assignment = Assignment.cheapest(chain3, table)
        with pytest.raises(ScheduleError):
            min_resource_schedule(chain3, table, assignment=assignment, deadline=1)

    def test_parallel_forced_growth(self):
        """Independent nodes at a tight deadline force one unit each."""
        dfg = DFG()
        for i in range(4):
            dfg.add_node(f"v{i}")
        from repro.fu.table import TimeCostTable

        table = TimeCostTable.from_rows(
            {f"v{i}": ([3], [1.0]) for i in range(4)}
        )
        assignment = Assignment.of({f"v{i}": 0 for i in range(4)})
        sched = min_resource_schedule(
            dfg, table, assignment=assignment, deadline=3, initial=Configuration.of([0])
        )
        sched.validate(dfg, table, assignment)
        assert sched.configuration.counts[0] == 4

    def test_deterministic(self):
        dfg = random_dag(10, edge_prob=0.3, seed=5)
        table = random_table(dfg, num_types=3, seed=5)
        floor = min_completion_time(dfg, table)
        assignment = dfg_assign_repeat(dfg, table, floor + 3).assignment
        s1 = min_resource_schedule(dfg, table, assignment=assignment, deadline=floor + 3)
        s2 = min_resource_schedule(dfg, table, assignment=assignment, deadline=floor + 3)
        assert s1.ops == s2.ops


class TestListSchedule:
    def test_valid_on_min_resource_configuration(self):
        dfg = random_dag(10, edge_prob=0.3, seed=6)
        table = random_table(dfg, num_types=3, seed=6)
        floor = min_completion_time(dfg, table)
        assignment = dfg_assign_repeat(dfg, table, floor + 4).assignment
        cfg = min_resource_schedule(
            dfg, table, assignment=assignment, deadline=floor + 4
        ).configuration
        sched = list_schedule(dfg, table, assignment=assignment, configuration=cfg)
        sched.validate(dfg, table, assignment)

    def test_single_unit_serializes(self, chain3):
        table = random_table(chain3, seed=7)
        assignment = Assignment.uniform(chain3, 0)
        total = sum(assignment.execution_times(chain3, table).values())
        sched = list_schedule(
            chain3, table, assignment=assignment, configuration=Configuration.of([1, 0, 0])
        )
        assert sched.makespan(table) == total

    def test_missing_type_raises(self, chain3):
        table = random_table(chain3, seed=8)
        assignment = Assignment.uniform(chain3, 1)
        with pytest.raises(ScheduleError, match="no unit"):
            list_schedule(chain3, table, assignment=assignment, configuration=Configuration.of([5, 0, 5]))

    def test_more_units_never_slower(self):
        dfg = random_dag(12, edge_prob=0.35, seed=9)
        table = random_table(dfg, num_types=1, seed=9)
        assignment = Assignment.uniform(dfg, 0)
        mk = [
            list_schedule(
                dfg, table, assignment=assignment, configuration=Configuration.of([k])
            ).makespan(table)
            for k in (1, 2, 4, 8)
        ]
        assert all(a >= b for a, b in zip(mk, mk[1:]))
