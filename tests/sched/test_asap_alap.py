"""Unit tests for ASAP/ALAP scheduling."""

import pytest

from repro.errors import ScheduleError
from repro.graph.dfg import DFG
from repro.sched.asap_alap import alap_starts, asap_starts, mobility

UNIT = {"a": 1, "b": 1, "c": 1, "d": 1}


class TestASAP:
    def test_roots_start_at_zero(self, diamond):
        starts = asap_starts(diamond, UNIT)
        assert starts["a"] == 0

    def test_respects_durations(self, diamond):
        times = {"a": 2, "b": 3, "c": 1, "d": 1}
        starts = asap_starts(diamond, times)
        assert starts["b"] == 2 and starts["c"] == 2
        assert starts["d"] == 5  # after b (2+3)

    def test_matches_longest_path(self, diamond):
        from repro.graph.paths import longest_path_time

        times = {"a": 2, "b": 5, "c": 1, "d": 3}
        starts = asap_starts(diamond, times)
        makespan = max(starts[n] + times[n] for n in diamond.nodes())
        assert makespan == longest_path_time(diamond, times)

    def test_missing_times(self, diamond):
        with pytest.raises(ScheduleError):
            asap_starts(diamond, {"a": 1})

    def test_negative_times(self, diamond):
        bad = dict(UNIT)
        bad["b"] = -1
        with pytest.raises(ScheduleError):
            asap_starts(diamond, bad)


class TestALAP:
    def test_leaves_end_at_deadline(self, diamond):
        starts = alap_starts(diamond, UNIT, 10)
        assert starts["d"] + UNIT["d"] == 10

    def test_exact_deadline_equals_asap(self, diamond):
        """With zero slack, ALAP and ASAP coincide on critical nodes."""
        asap = asap_starts(diamond, UNIT)
        alap = alap_starts(diamond, UNIT, 3)  # 3 == critical path
        assert asap == alap

    def test_infeasible_deadline(self, diamond):
        with pytest.raises(ScheduleError):
            alap_starts(diamond, UNIT, 2)

    def test_negative_deadline(self, diamond):
        with pytest.raises(ScheduleError):
            alap_starts(diamond, UNIT, -1)

    def test_precedence_holds(self, diamond):
        times = {"a": 2, "b": 3, "c": 1, "d": 2}
        starts = alap_starts(diamond, times, 12)
        for u, v, _ in diamond.edges():
            assert starts[v] >= starts[u] + times[u]


class TestMobility:
    def test_non_negative(self, diamond):
        mob = mobility(diamond, UNIT, 6)
        assert all(m >= 0 for m in mob.values())

    def test_critical_nodes_have_zero_at_floor(self, diamond):
        mob = mobility(diamond, UNIT, 3)
        assert all(m == 0 for m in mob.values())

    def test_slack_grows_with_deadline(self, diamond):
        m1 = mobility(diamond, UNIT, 4)
        m2 = mobility(diamond, UNIT, 8)
        assert all(m2[n] >= m1[n] for n in diamond.nodes())

    def test_off_critical_node_has_slack(self, diamond):
        times = {"a": 1, "b": 5, "c": 1, "d": 1}
        mob = mobility(diamond, times, 7)
        assert mob["b"] == 0  # critical
        assert mob["c"] == 4  # can slide within b's window
