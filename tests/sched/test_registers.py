"""Unit tests for register allocation (lifetime analysis + left-edge)."""

import pytest

from repro.assign.assignment import Assignment
from repro.errors import ScheduleError
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.sched.registers import (
    Lifetime,
    allocate_registers,
    value_lifetimes,
)
from repro.sched.schedule import Configuration, Schedule, ScheduledOp


def make_instance(edges, times, starts, deadline=20):
    """Single-FU-type instance with explicit starts."""
    dfg = DFG.from_edges(edges)
    table = TimeCostTable.from_rows(
        {n: ([times[n]], [1.0]) for n in dfg.nodes()}
    )
    assignment = Assignment.of({n: 0 for n in dfg.nodes()})
    ops = {n: ScheduledOp(start=starts[n], fu_type=0, fu_index=i)
           for i, n in enumerate(dfg.nodes())}
    schedule = Schedule(
        ops=ops,
        configuration=Configuration.of([len(starts)]),
        deadline=deadline,
    )
    schedule.validate(dfg, table, assignment)
    return dfg, table, assignment, schedule


class TestLifetime:
    def test_overlap(self):
        a = Lifetime("a", 0, 5)
        b = Lifetime("b", 4, 6)
        c = Lifetime("c", 5, 7)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # [0,5) and [5,7) touch but don't overlap

    def test_bad_interval(self):
        with pytest.raises(ScheduleError):
            Lifetime("a", 5, 4)


class TestValueLifetimes:
    def test_birth_at_completion_death_at_last_consumer(self):
        dfg, table, assignment, schedule = make_instance(
            edges=[("a", "b"), ("a", "c")],
            times={"a": 2, "b": 1, "c": 1},
            starts={"a": 0, "b": 2, "c": 7},
        )
        lt = value_lifetimes(dfg, table, assignment, schedule)
        assert lt["a"].birth == 2
        assert lt["a"].death == 7  # last consumer (c) starts at 7

    def test_sink_dies_at_birth(self):
        dfg, table, assignment, schedule = make_instance(
            edges=[("a", "b")],
            times={"a": 1, "b": 1},
            starts={"a": 0, "b": 1},
        )
        lt = value_lifetimes(dfg, table, assignment, schedule)
        assert lt["b"].birth == lt["b"].death == 2

    def test_delayed_consumer_extends_to_makespan(self):
        dfg = DFG.from_edges([("a", "b", 1)])  # inter-iteration edge
        dfg.add_node("c")
        table = TimeCostTable.from_rows(
            {"a": ([1], [1.0]), "b": ([1], [1.0]), "c": ([5], [1.0])}
        )
        assignment = Assignment.of({"a": 0, "b": 0, "c": 0})
        schedule = Schedule(
            ops={
                "a": ScheduledOp(0, 0, 0),
                "b": ScheduledOp(0, 0, 1),
                "c": ScheduledOp(0, 0, 2),
            },
            configuration=Configuration.of([3]),
            deadline=10,
        )
        lt = value_lifetimes(dfg, table, assignment, schedule)
        # a's value must survive into the next iteration: to the makespan
        assert lt["a"].death == schedule.makespan(table) == 5


class TestAllocate:
    def test_serial_chain_uses_one_register(self):
        dfg, table, assignment, schedule = make_instance(
            edges=[("a", "b"), ("b", "c")],
            times={"a": 1, "b": 1, "c": 1},
            starts={"a": 0, "b": 3, "c": 6},
        )
        alloc = allocate_registers(dfg, table, assignment, schedule)
        assert alloc.num_registers == 1

    def test_parallel_values_need_separate_registers(self):
        # two producers alive simultaneously, one late consumer each
        dfg, table, assignment, schedule = make_instance(
            edges=[("a", "c"), ("b", "c")],
            times={"a": 1, "b": 1, "c": 1},
            starts={"a": 0, "b": 0, "c": 5},
        )
        alloc = allocate_registers(dfg, table, assignment, schedule)
        assert alloc.num_registers == 2

    def test_register_reuse_after_death(self):
        # a dies before b is born -> same register
        dfg, table, assignment, schedule = make_instance(
            edges=[("a", "x"), ("b", "y")],
            times={"a": 1, "b": 1, "x": 1, "y": 1},
            starts={"a": 0, "x": 2, "b": 4, "y": 6},
        )
        alloc = allocate_registers(dfg, table, assignment, schedule)
        assert alloc.num_registers == 1

    def test_count_equals_peak_overlap(self):
        dfg, table, assignment, schedule = make_instance(
            edges=[("a", "d"), ("b", "d"), ("c", "d")],
            times={"a": 1, "b": 1, "c": 1, "d": 1},
            starts={"a": 0, "b": 0, "c": 0, "d": 8},
        )
        alloc = allocate_registers(dfg, table, assignment, schedule)
        assert alloc.num_registers == 3

    def test_verify_is_clean_on_real_synthesis(self):
        from repro.fu.random_tables import random_table
        from repro.assign.assignment import min_completion_time
        from repro.suite.registry import get_benchmark
        from repro.synthesis import synthesize

        for name in ("diffeq", "elliptic"):
            dag = get_benchmark(name).dag()
            t = random_table(dag, num_types=3, seed=24)
            deadline = min_completion_time(dag, t) + 5
            result = synthesize(dag, t, deadline)
            alloc = allocate_registers(dag, t, result.assignment, result.schedule)
            alloc.verify()
            assert alloc.num_registers >= 0
            # every allocated node has a lifetime
            for node in alloc.registers:
                assert node in alloc.lifetimes


class TestEdgeCases:
    def test_single_node_schedule_needs_no_registers(self):
        one = DFG(name="one")
        one.add_node("x", op="mul")
        table = TimeCostTable.from_rows({"x": ([2], [1.0])})
        assignment = Assignment.of({"x": 0})
        schedule = Schedule(
            ops={"x": ScheduledOp(start=0, fu_type=0, fu_index=0)},
            configuration=Configuration.of([1]),
            deadline=5,
        )
        alloc = allocate_registers(one, table, assignment, schedule)
        # a pure sink's value dies at birth: no register consumed
        assert alloc.num_registers == 0
        assert alloc.registers == {}
        lt = alloc.lifetimes["x"]
        assert (lt.birth, lt.death) == (2, 2)

    def test_empty_schedule_has_zero_makespan(self):
        table = TimeCostTable.from_rows({"x": ([1], [1.0])})
        empty = Schedule(
            ops={}, configuration=Configuration.of([1]), deadline=0
        )
        assert empty.makespan(table) == 0

    def test_empty_schedule_fails_validation_on_nonempty_graph(self):
        one = DFG(name="one")
        one.add_node("x", op="mul")
        table = TimeCostTable.from_rows({"x": ([1], [1.0])})
        assignment = Assignment.of({"x": 0})
        empty = Schedule(
            ops={}, configuration=Configuration.of([1]), deadline=0
        )
        with pytest.raises(ScheduleError, match="unscheduled nodes"):
            empty.validate(one, table, assignment)

    def test_delayed_self_loop_value_lives_to_makespan(self):
        # all of x's out-edges are delayed -> its value must survive to
        # the end of the iteration (the next iteration's prologue reads
        # it), here until y finishes at step 5
        dfg = DFG.from_edges([("x", "x", 1)])
        dfg.add_node("y", op="add")
        table = TimeCostTable.from_rows(
            {"x": ([2], [1.0]), "y": ([1], [1.0])}
        )
        assignment = Assignment.of({"x": 0, "y": 0})
        schedule = Schedule(
            ops={
                "x": ScheduledOp(start=0, fu_type=0, fu_index=0),
                "y": ScheduledOp(start=4, fu_type=0, fu_index=0),
            },
            configuration=Configuration.of([1]),
            deadline=6,
        )
        alloc = allocate_registers(dfg, table, assignment, schedule)
        lt = alloc.lifetimes["x"]
        assert (lt.birth, lt.death) == (2, schedule.makespan(table))
        assert alloc.num_registers == 1
