"""Unit tests for the HEFT-style heterogeneous list scheduler."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.dfg_assign import dfg_assign_repeat
from repro.fu.random_tables import random_table
from repro.sched.heft import heft_schedule, upward_ranks
from repro.sched.lower_bound import lower_bound_configuration
from repro.suite.synthetic import random_dag


class TestUpwardRanks:
    def test_source_has_largest_rank_on_a_chain(self, chain3, chain3_table):
        ranks = upward_ranks(chain3, chain3_table)
        assert ranks["a"] > ranks["b"] > ranks["c"]

    def test_rank_is_mean_time_plus_best_child(self, chain3, chain3_table):
        ranks = upward_ranks(chain3, chain3_table)
        mean = {
            n: sum(chain3_table.times(n)) / len(chain3_table.times(n))
            for n in ("a", "b", "c")
        }
        assert ranks["c"] == pytest.approx(mean["c"])
        assert ranks["b"] == pytest.approx(mean["b"] + ranks["c"])
        assert ranks["a"] == pytest.approx(mean["a"] + ranks["b"])

    def test_sink_rank_is_own_mean(self, diamond):
        table = random_table(diamond, seed=0)
        ranks = upward_ranks(diamond, table)
        times = table.times("d")
        assert ranks["d"] == pytest.approx(sum(times) / len(times))


class TestHeftSchedule:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_and_within_deadline(self, seed):
        dfg = random_dag(11, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 3, floor + 10):
            assignment = dfg_assign_repeat(dfg, table, deadline).assignment
            sched = heft_schedule(
                dfg, table, assignment=assignment, deadline=deadline
            )
            sched.validate(dfg, table, assignment)
            assert sched.makespan(table) <= deadline

    @pytest.mark.parametrize("seed", range(8))
    def test_configuration_at_least_lower_bound(self, seed):
        dfg = random_dag(10, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        assignment = dfg_assign_repeat(dfg, table, floor + 2).assignment
        lb = lower_bound_configuration(dfg, table, assignment, floor + 2)
        sched = heft_schedule(
            dfg, table, assignment=assignment, deadline=floor + 2
        )
        assert lb.dominates(sched.configuration)

    def test_chain_fits_on_single_units(self, chain3, chain3_table):
        assignment = Assignment.fastest(chain3, chain3_table)
        deadline = assignment.completion_time(chain3, chain3_table)
        sched = heft_schedule(
            chain3, chain3_table, assignment=assignment, deadline=deadline
        )
        assert all(c <= 1 for c in sched.configuration.counts)

    def test_initial_configuration_respected(self, chain3, chain3_table):
        assignment = Assignment.fastest(chain3, chain3_table)
        deadline = assignment.completion_time(chain3, chain3_table)
        lb = lower_bound_configuration(
            chain3, chain3_table, assignment, deadline
        )
        sched = heft_schedule(
            chain3,
            chain3_table,
            assignment=assignment,
            deadline=deadline,
            initial=lb,
        )
        assert lb.dominates(sched.configuration)

    def test_deterministic(self):
        dfg = random_dag(12, edge_prob=0.25, seed=4)
        table = random_table(dfg, num_types=3, seed=4)
        floor = min_completion_time(dfg, table)
        assignment = dfg_assign_repeat(dfg, table, floor + 3).assignment
        a = heft_schedule(dfg, table, assignment=assignment, deadline=floor + 3)
        b = heft_schedule(dfg, table, assignment=assignment, deadline=floor + 3)
        assert a.ops == b.ops
