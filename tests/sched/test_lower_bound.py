"""Unit tests for Lower_Bound_R."""

import pytest

from repro.assign.assignment import Assignment, min_completion_time
from repro.assign.exact import exact_assign
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.sched.asap_alap import asap_starts
from repro.sched.lower_bound import lower_bound_configuration, occupancy
from repro.suite.synthetic import random_dag


class TestOccupancy:
    def test_counts_executing_steps(self, diamond):
        times = {"a": 2, "b": 1, "c": 1, "d": 1}
        type_of = {n: 0 for n in diamond.nodes()}
        starts = asap_starts(diamond, times)
        occ = occupancy(diamond, times, type_of, starts, 1, 4)
        # a occupies steps 0-1, b and c step 2, d step 3
        assert list(occ[0]) == [1, 1, 2, 1]

    def test_respects_type_split(self, diamond):
        times = {n: 1 for n in diamond.nodes()}
        type_of = {"a": 0, "b": 1, "c": 0, "d": 1}
        starts = asap_starts(diamond, times)
        occ = occupancy(diamond, times, type_of, starts, 2, 3)
        assert occ[0].sum() == 2 and occ[1].sum() == 2

    def test_out_of_horizon_raises(self, diamond):
        from repro.errors import ScheduleError

        times = {n: 1 for n in diamond.nodes()}
        type_of = {n: 0 for n in diamond.nodes()}
        starts = asap_starts(diamond, times)
        with pytest.raises(ScheduleError):
            occupancy(diamond, times, type_of, starts, 1, 2)


class TestLowerBound:
    def test_serial_chain_needs_one(self, chain3):
        table = random_table(chain3, seed=0)
        assignment = Assignment.fastest(chain3, table)
        deadline = assignment.completion_time(chain3, table)
        lb = lower_bound_configuration(chain3, table, assignment, deadline)
        # a chain never needs more than one unit per type
        assert all(c <= 1 for c in lb.counts)

    def test_parallel_nodes_force_width(self):
        # w independent nodes, deadline = single execution time
        w = 5
        dfg = DFG()
        for i in range(w):
            dfg.add_node(f"v{i}")
        from repro.fu.table import TimeCostTable

        table = TimeCostTable.from_rows(
            {f"v{i}": ([2], [1.0]) for i in range(w)}
        )
        assignment = Assignment.of({f"v{i}": 0 for i in range(w)})
        lb = lower_bound_configuration(dfg, table, assignment, 2)
        assert lb.counts[0] == w  # all must run simultaneously

    def test_relaxed_deadline_halves_bound(self):
        w = 4
        dfg = DFG()
        for i in range(w):
            dfg.add_node(f"v{i}")
        from repro.fu.table import TimeCostTable

        table = TimeCostTable.from_rows(
            {f"v{i}": ([2], [1.0]) for i in range(w)}
        )
        assignment = Assignment.of({f"v{i}": 0 for i in range(w)})
        lb = lower_bound_configuration(dfg, table, assignment, 4)
        assert lb.counts[0] == 2  # 8 busy-steps over 4 steps

    def test_unused_type_bound_zero(self, chain3):
        table = random_table(chain3, num_types=3, seed=1)
        assignment = Assignment.uniform(chain3, 0)
        deadline = assignment.completion_time(chain3, table)
        lb = lower_bound_configuration(chain3, table, assignment, deadline)
        assert lb.counts[1] == 0 and lb.counts[2] == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_bound_is_sound(self, seed):
        """No valid schedule may use fewer units than the bound — verified
        against the min-resource scheduler's achieved configuration."""
        from repro.sched.min_resource import min_resource_schedule

        dfg = random_dag(9, edge_prob=0.3, seed=seed)
        table = random_table(dfg, num_types=3, seed=seed)
        floor = min_completion_time(dfg, table)
        for deadline in (floor, floor + 4):
            assignment = exact_assign(dfg, table, deadline).assignment
            lb = lower_bound_configuration(dfg, table, assignment, deadline)
            achieved = min_resource_schedule(
                dfg, table, assignment=assignment, deadline=deadline
            ).configuration
            assert lb.dominates(achieved)

    def test_infeasible_assignment_rejected(self, chain3):
        from repro.errors import ScheduleError

        table = random_table(chain3, seed=2)
        assignment = Assignment.cheapest(chain3, table)
        with pytest.raises(ScheduleError):
            lower_bound_configuration(chain3, table, assignment, 1)
