"""Unit tests for Schedule / Configuration objects and validation."""

import pytest

from repro.assign.assignment import Assignment
from repro.errors import ScheduleError
from repro.fu.library import default_library
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG
from repro.sched.schedule import Configuration, Schedule, ScheduledOp


@pytest.fixture
def table():
    return TimeCostTable.from_rows(
        {
            "a": ([2, 3], [5.0, 2.0]),
            "b": ([1, 2], [4.0, 1.0]),
            "c": ([1, 3], [6.0, 3.0]),
        }
    )


@pytest.fixture
def graph():
    return DFG.from_edges([("a", "b"), ("a", "c")])


@pytest.fixture
def assignment():
    return Assignment.of({"a": 0, "b": 0, "c": 1})


def make_schedule(ops, counts=(1, 1), deadline=10):
    return Schedule(
        ops=ops, configuration=Configuration.of(counts), deadline=deadline
    )


class TestConfiguration:
    def test_label(self):
        assert Configuration.of([2, 0, 1]).label() == "2F1 1F3"

    def test_label_custom_names(self):
        assert Configuration.of([1, 1]).label(["ALU", "MUL"]) == "1ALU 1MUL"

    def test_empty_label(self):
        assert Configuration.of([0, 0]).label() == "(empty)"

    def test_total_units(self):
        assert Configuration.of([2, 3]).total_units() == 5

    def test_price(self):
        lib = default_library(2)
        cfg = Configuration.of([1, 2])
        assert cfg.price(lib) == pytest.approx(
            lib[0].price + 2 * lib[1].price
        )

    def test_price_size_mismatch(self):
        with pytest.raises(ScheduleError):
            Configuration.of([1]).price(default_library(2))

    def test_dominates(self):
        assert Configuration.of([1, 2]).dominates(Configuration.of([2, 2]))
        assert not Configuration.of([3, 0]).dominates(Configuration.of([2, 2]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ScheduleError):
            Configuration.of([-1])


class TestScheduledOp:
    def test_negative_fields_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduledOp(start=-1, fu_type=0, fu_index=0)


class TestValidation:
    def test_valid_schedule(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 0, 0),
            "b": ScheduledOp(2, 0, 0),
            "c": ScheduledOp(2, 1, 0),
        }
        sched = make_schedule(ops)
        sched.validate(graph, table, assignment)  # must not raise
        assert sched.makespan(table) == 5  # c: start 2 + t 3

    def test_missing_node(self, graph, table, assignment):
        sched = make_schedule({"a": ScheduledOp(0, 0, 0)})
        with pytest.raises(ScheduleError, match="unscheduled"):
            sched.validate(graph, table, assignment)

    def test_unknown_node(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 0, 0),
            "b": ScheduledOp(2, 0, 0),
            "c": ScheduledOp(2, 1, 0),
            "zzz": ScheduledOp(0, 0, 0),
        }
        with pytest.raises(ScheduleError, match="unknown"):
            make_schedule(ops).validate(graph, table, assignment)

    def test_type_mismatch(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 1, 0),  # assigned type 0, scheduled on 1
            "b": ScheduledOp(3, 0, 0),
            "c": ScheduledOp(3, 1, 0),
        }
        with pytest.raises(ScheduleError, match="assigned"):
            make_schedule(ops).validate(graph, table, assignment)

    def test_precedence_violation(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 0, 0),
            "b": ScheduledOp(1, 0, 0),  # a runs until 2
            "c": ScheduledOp(2, 1, 0),
        }
        with pytest.raises(ScheduleError, match="precedence"):
            make_schedule(ops).validate(graph, table, assignment)

    def test_deadline_violation(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 0, 0),
            "b": ScheduledOp(9, 0, 0),
            "c": ScheduledOp(2, 1, 0),
        }
        with pytest.raises(ScheduleError, match="deadline"):
            make_schedule(ops, deadline=9).validate(graph, table, assignment)

    def test_fu_index_out_of_configuration(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 0, 1),  # only 1 unit of type 0
            "b": ScheduledOp(2, 0, 0),
            "c": ScheduledOp(2, 1, 0),
        }
        with pytest.raises(ScheduleError, match="exceeds"):
            make_schedule(ops).validate(graph, table, assignment)

    def test_instance_overlap(self, table):
        graph = DFG.from_edges([("a", "c")])
        graph.add_node("b")
        assignment = Assignment.of({"a": 0, "b": 0, "c": 1})
        ops = {
            "a": ScheduledOp(0, 0, 0),  # occupies [0,2) on F1#0
            "b": ScheduledOp(1, 0, 0),  # overlaps on the same instance
            "c": ScheduledOp(2, 1, 0),
        }
        with pytest.raises(ScheduleError, match="overlaps"):
            make_schedule(ops).validate(graph, table, assignment)

    def test_delayed_edges_do_not_constrain(self, table):
        graph = DFG.from_edges([("a", "b", 1)])  # inter-iteration only
        graph.add_node("c")
        assignment = Assignment.of({"a": 0, "b": 0, "c": 1})
        ops = {
            "a": ScheduledOp(5, 0, 0),
            "b": ScheduledOp(0, 0, 0),  # before a: fine, different iteration
            "c": ScheduledOp(0, 1, 0),
        }
        make_schedule(ops).validate(graph, table, assignment)


class TestUsageProfile:
    def test_counts_occupancy(self, graph, table, assignment):
        ops = {
            "a": ScheduledOp(0, 0, 0),
            "b": ScheduledOp(2, 0, 0),
            "c": ScheduledOp(2, 1, 0),
        }
        sched = make_schedule(ops, counts=(1, 1), deadline=6)
        profile = sched.usage_profile(table)
        assert profile[0][:3] == [1, 1, 1]  # a then b on type 0
        assert profile[1][2:5] == [1, 1, 1]  # c on type 1
        assert max(profile[0]) <= 1 and max(profile[1]) <= 1
