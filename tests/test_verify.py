"""Unit tests for the cross-validation certifier."""

import pytest

from repro.assign.assignment import min_completion_time
from repro.fu.random_tables import random_table
from repro.suite.registry import get_benchmark
from repro.suite.synthetic import random_dag, random_path, random_tree
from repro.verify import Certificate, certify


class TestCertify:
    def test_small_dag_full_portfolio(self):
        dfg = random_dag(8, edge_prob=0.3, seed=0)
        table = random_table(dfg, num_types=3, seed=0)
        deadline = min_completion_time(dfg, table) + 3
        cert = certify(dfg, table, deadline)
        assert "exact" in cert.costs
        assert any("brute force" in c for c in cert.checks)

    def test_path_includes_path_dp(self):
        dfg = random_path(6, seed=1)
        table = random_table(dfg, num_types=3, seed=1)
        deadline = min_completion_time(dfg, table) + 4
        cert = certify(dfg, table, deadline)
        assert "path" in cert.costs and "tree" in cert.costs

    def test_tree_includes_tree_dp(self):
        dfg = random_tree(9, seed=2)
        table = random_table(dfg, num_types=3, seed=2)
        deadline = min_completion_time(dfg, table) + 4
        cert = certify(dfg, table, deadline)
        assert "tree" in cert.costs
        assert any("optimal on the tree" in c for c in cert.checks)

    def test_large_dag_skips_exact_gracefully(self):
        dfg = get_benchmark("elliptic").dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 8
        cert = certify(dfg, table, deadline)
        # either exact finished or the skip is recorded — never a crash
        assert ("exact" in cert.costs) or any(
            "skipped" in c for c in cert.checks
        )

    @pytest.mark.parametrize("name", ["lattice4", "diffeq"])
    def test_benchmarks_certify(self, name):
        dfg = get_benchmark(name).dag()
        table = random_table(dfg, num_types=3, seed=24)
        deadline = min_completion_time(dfg, table) + 4
        cert = certify(dfg, table, deadline)
        assert cert.deadline == deadline
        assert any("scheduler" in c for c in cert.checks)

    def test_describe_readable(self):
        dfg = random_path(4, seed=3)
        table = random_table(dfg, num_types=2, seed=3)
        deadline = min_completion_time(dfg, table) + 2
        text = certify(dfg, table, deadline).describe()
        assert "deadline" in text and "[ok]" in text and "cost" in text
