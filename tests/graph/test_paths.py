"""Unit tests for critical-path machinery."""

import pytest

from repro.errors import GraphError
from repro.graph.dfg import DFG
from repro.graph.paths import (
    all_critical_paths,
    count_root_leaf_paths,
    critical_path,
    enumerate_root_leaf_paths,
    longest_path_time,
    min_path_to_leaf,
    path_time,
)

UNIT = {"a": 1, "b": 1, "c": 1, "d": 1}


class TestPathTime:
    def test_sums_node_times(self):
        assert path_time(["a", "b"], {"a": 2, "b": 5}) == 7

    def test_empty_path(self):
        assert path_time([], {}) == 0


class TestLongestPath:
    def test_diamond_unit_times(self, diamond):
        assert longest_path_time(diamond, UNIT) == 3

    def test_diamond_weighted(self, diamond):
        times = {"a": 1, "b": 10, "c": 1, "d": 1}
        assert longest_path_time(diamond, times) == 12

    def test_single_node(self):
        dfg = DFG()
        dfg.add_node("x")
        assert longest_path_time(dfg, {"x": 7}) == 7

    def test_empty_graph(self):
        assert longest_path_time(DFG(), {}) == 0

    def test_missing_times_raise(self, diamond):
        with pytest.raises(GraphError):
            longest_path_time(diamond, {"a": 1})

    def test_disconnected_components(self):
        dfg = DFG.from_edges([("a", "b")])
        dfg.add_node("z")
        assert longest_path_time(dfg, {"a": 1, "b": 1, "z": 9}) == 9


class TestMinPathToLeaf:
    def test_diamond(self, diamond):
        down = min_path_to_leaf(diamond, UNIT)
        assert down == {"a": 3, "b": 2, "c": 2, "d": 1}

    def test_is_inclusive_of_own_time(self):
        dfg = DFG.from_edges([("a", "b")])
        down = min_path_to_leaf(dfg, {"a": 3, "b": 4})
        assert down["b"] == 4
        assert down["a"] == 7


class TestCriticalPath:
    def test_returns_longest(self, diamond):
        times = {"a": 1, "b": 10, "c": 1, "d": 1}
        path = critical_path(diamond, times)
        assert path == ["a", "b", "d"]
        assert path_time(path, times) == longest_path_time(diamond, times)

    def test_empty(self):
        assert critical_path(DFG(), {}) == []

    def test_all_critical_paths_ties(self, diamond):
        paths = all_critical_paths(diamond, UNIT)
        assert sorted(map(tuple, paths)) == [("a", "b", "d"), ("a", "c", "d")]

    def test_all_critical_paths_single(self, diamond):
        times = {"a": 1, "b": 10, "c": 1, "d": 1}
        assert all_critical_paths(diamond, times) == [["a", "b", "d"]]

    def test_all_critical_paths_limit(self, diamond):
        with pytest.raises(GraphError):
            all_critical_paths(diamond, UNIT, limit=1)


class TestEnumeration:
    def test_enumerates_all(self, diamond):
        paths = sorted(map(tuple, enumerate_root_leaf_paths(diamond)))
        assert paths == [("a", "b", "d"), ("a", "c", "d")]

    def test_count_matches_enumeration(self, diamond):
        assert count_root_leaf_paths(diamond) == 2

    def test_count_exponential_family(self):
        # k stacked diamonds -> 2^k paths, counted without enumeration
        dfg = DFG()
        prev = "n0"
        dfg.add_node(prev)
        for i in range(10):
            top, bot, join = f"t{i}", f"b{i}", f"n{i + 1}"
            dfg.add_edge(prev, top, 0)
            dfg.add_edge(prev, bot, 0)
            dfg.add_edge(top, join, 0)
            dfg.add_edge(bot, join, 0)
            prev = join
        assert count_root_leaf_paths(dfg) == 2 ** 10

    def test_enumeration_limit(self):
        dfg = DFG.from_edges([("a", "b"), ("a", "c")])
        with pytest.raises(GraphError):
            list(enumerate_root_leaf_paths(dfg, limit=1))
