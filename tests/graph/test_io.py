"""Unit tests for DFG serialization."""

import json

import pytest

from repro.errors import GraphError
from repro.graph.dfg import DFG
from repro.graph.io import from_dict, from_json, to_dict, to_dot, to_json


class TestJsonRoundtrip:
    def test_roundtrip_preserves_structure(self, diamond):
        assert from_json(to_json(diamond)) == diamond

    def test_roundtrip_preserves_ops_and_delays(self):
        dfg = DFG.from_edges(
            [("a", "b", 2), ("b", "c", 0)], ops={"a": "mul", "b": "add", "c": "sub"}
        )
        back = from_json(to_json(dfg))
        assert back == dfg
        assert back.op("a") == "mul"
        assert back.total_delays() == 2

    def test_roundtrip_preserves_origin(self):
        dfg = DFG()
        dfg.add_node("x~1", op="mul", origin="x")
        back = from_dict(to_dict(dfg))
        assert back.attr("x~1", "origin") == "x"

    def test_name_preserved(self, diamond):
        assert from_json(to_json(diamond)).name == "diamond"

    def test_document_shape(self, chain3):
        doc = to_dict(chain3)
        assert set(doc) == {"name", "nodes", "edges"}
        assert all(set(n) >= {"id", "op"} for n in doc["nodes"])
        assert all(set(e) == {"src", "dst", "delay"} for e in doc["edges"])


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(GraphError):
            from_json("not json{")

    def test_malformed_document(self):
        with pytest.raises(GraphError):
            from_dict({"nodes": "oops"})

    def test_missing_edges_key(self):
        with pytest.raises(GraphError):
            from_dict({"nodes": []})


class TestDot:
    def test_contains_all_nodes_and_edges(self, diamond):
        dot = to_dot(diamond)
        for n in diamond.nodes():
            assert f'"{n}"' in dot
        assert dot.count("->") == diamond.num_edges()

    def test_delayed_edges_dashed(self):
        dfg = DFG.from_edges([("a", "b", 2)])
        dot = to_dot(dfg)
        assert "dashed" in dot
        assert "2D" in dot

    def test_valid_shape(self, diamond):
        dot = to_dot(diamond)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_json_is_parseable(self, diamond):
        json.loads(to_json(diamond))  # must not raise
