"""Unit tests for graph structural metrics."""

import pytest

from repro.graph.analysis import op_histogram, parallelism_profile, profile
from repro.graph.dfg import DFG
from repro.suite.registry import get_benchmark


class TestOpHistogram:
    def test_counts(self):
        dfg = DFG.from_edges(
            [("a", "b"), ("b", "c")], ops={"a": "mul", "b": "mul", "c": "add"}
        )
        assert op_histogram(dfg) == {"add": 1, "mul": 2}

    def test_sorted_keys(self):
        dfg = DFG()
        dfg.add_node("x", op="sub")
        dfg.add_node("y", op="add")
        assert list(op_histogram(dfg)) == ["add", "sub"]


class TestParallelismProfile:
    def test_diamond(self, diamond):
        unit = {n: 1 for n in diamond.nodes()}
        assert parallelism_profile(diamond, unit) == [1, 2, 1]

    def test_independent_nodes(self):
        dfg = DFG()
        for i in range(3):
            dfg.add_node(f"v{i}")
        assert parallelism_profile(dfg, {f"v{i}": 2 for i in range(3)}) == [3, 3]

    def test_total_mass_is_total_work(self, diamond):
        times = {"a": 2, "b": 3, "c": 1, "d": 2}
        assert sum(parallelism_profile(diamond, times)) == sum(times.values())


class TestProfile:
    def test_elliptic_fingerprint(self):
        p = profile(get_benchmark("elliptic"))
        assert p.nodes == 34
        assert p.ops == {"add": 26, "mul": 8}
        assert p.shape == "dag"
        assert p.roots == 8 and p.leaves == 1

    def test_shapes(self, chain3, small_tree, wide_dag):
        assert profile(chain3).shape == "path"
        assert profile(small_tree).shape == "tree"
        assert profile(wide_dag).shape == "dag"

    def test_expansion_copies_matches_expand(self, wide_dag):
        from repro.assign.dfg_expand import dfg_expand

        p = profile(wide_dag)
        assert p.extra_copies_on_expansion == len(dfg_expand(wide_dag)) - len(
            wide_dag
        )

    def test_cyclic_graph_uses_dag_part(self):
        dfg = get_benchmark("biquad2")
        p = profile(dfg)
        assert p.delays > 0
        assert p.nodes == len(dfg)

    def test_describe_readable(self):
        text = profile(get_benchmark("diffeq")).describe()
        assert "diffeq" in text and "11 nodes" in text and "mul" in text
