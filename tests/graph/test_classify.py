"""Unit tests for structural classification."""

from repro.graph.classify import (
    common_nodes,
    duplication_count,
    is_in_forest,
    is_out_forest,
    is_out_tree,
    is_simple_path,
    multi_parent_nodes,
)
from repro.graph.dfg import DFG


class TestIsSimplePath:
    def test_chain(self, chain3):
        assert is_simple_path(chain3)

    def test_single_node(self):
        dfg = DFG()
        dfg.add_node("x")
        assert is_simple_path(dfg)

    def test_empty_not_path(self):
        assert not is_simple_path(DFG())

    def test_diamond_not_path(self, diamond):
        assert not is_simple_path(diamond)

    def test_two_components_not_path(self):
        dfg = DFG.from_edges([("a", "b")])
        dfg.add_node("c")
        assert not is_simple_path(dfg)

    def test_cycle_not_path(self):
        dfg = DFG.from_edges([("a", "b", 0), ("b", "a", 1)])
        assert not is_simple_path(dfg)


class TestForests:
    def test_out_tree(self):
        dfg = DFG.from_edges([("r", "x"), ("r", "y"), ("y", "z")])
        assert is_out_forest(dfg)
        assert is_out_tree(dfg)
        assert not is_in_forest(dfg)

    def test_in_tree(self):
        dfg = DFG.from_edges([("x", "r"), ("y", "r"), ("z", "y")])
        assert is_in_forest(dfg)
        assert not is_out_forest(dfg)

    def test_chain_is_both(self, chain3):
        assert is_out_forest(chain3)
        assert is_in_forest(chain3)

    def test_forest_with_two_roots(self):
        dfg = DFG.from_edges([("r1", "x"), ("r2", "y")])
        assert is_out_forest(dfg)
        assert not is_out_tree(dfg)

    def test_diamond_is_neither(self, diamond):
        assert not is_out_forest(diamond)
        assert not is_in_forest(diamond)

    def test_empty_is_not_forest(self):
        assert not is_out_forest(DFG())
        assert not is_in_forest(DFG())


class TestCommonNodes:
    def test_diamond(self, diamond):
        # a has 2 downward paths, d has 2 upward paths; b and c lie on one each
        assert common_nodes(diamond) == ["a", "d"]

    def test_multi_parent_nodes(self, diamond):
        assert multi_parent_nodes(diamond) == ["d"]

    def test_tree_has_common_root_only(self):
        dfg = DFG.from_edges([("r", "x"), ("r", "y")])
        assert common_nodes(dfg) == ["r"]
        assert multi_parent_nodes(dfg) == []

    def test_chain_has_none(self, chain3):
        assert common_nodes(chain3) == []


class TestDuplicationCount:
    def test_tree_zero(self):
        dfg = DFG.from_edges([("r", "x"), ("r", "y"), ("y", "z")])
        assert duplication_count(dfg) == 0

    def test_diamond(self, diamond):
        # d reached via 2 paths -> one extra copy
        assert duplication_count(diamond) == 1

    def test_matches_expansion(self, wide_dag):
        from repro.assign.dfg_expand import dfg_expand

        extra = duplication_count(wide_dag)
        tree = dfg_expand(wide_dag)
        assert len(tree) == len(wide_dag) + extra
