"""Unit tests for the DFG model."""

import pytest

from repro.errors import CyclicDependencyError, GraphError
from repro.graph.dfg import DFG


class TestConstruction:
    def test_empty_graph(self):
        dfg = DFG(name="empty")
        assert len(dfg) == 0
        assert dfg.nodes() == []
        assert dfg.edges() == []
        assert dfg.num_edges() == 0

    def test_add_node_with_op(self):
        dfg = DFG()
        dfg.add_node("m", op="mul")
        assert "m" in dfg
        assert dfg.op("m") == "mul"

    def test_add_node_default_op(self):
        dfg = DFG()
        dfg.add_node("x")
        assert dfg.op("x") == "op"

    def test_add_node_none_rejected(self):
        dfg = DFG()
        with pytest.raises(GraphError):
            dfg.add_node(None)

    def test_add_edge_creates_endpoints(self):
        dfg = DFG()
        dfg.add_edge("u", "v", 0)
        assert "u" in dfg and "v" in dfg
        assert dfg.edges() == [("u", "v", 0)]

    def test_add_edge_negative_delay_rejected(self):
        dfg = DFG()
        with pytest.raises(GraphError):
            dfg.add_edge("u", "v", -1)

    def test_zero_delay_self_loop_rejected(self):
        dfg = DFG()
        with pytest.raises(CyclicDependencyError):
            dfg.add_edge("u", "u", 0)

    def test_delayed_self_loop_allowed(self):
        dfg = DFG()
        dfg.add_edge("u", "u", 1)
        assert dfg.edges() == [("u", "u", 1)]

    def test_parallel_edges_allowed(self):
        dfg = DFG()
        dfg.add_edge("u", "v", 0)
        dfg.add_edge("u", "v", 2)
        assert dfg.num_edges() == 2
        assert sorted(d for _, _, d in dfg.edges()) == [0, 2]

    def test_from_edges_two_tuples(self):
        dfg = DFG.from_edges([("a", "b"), ("b", "c")])
        assert len(dfg) == 3
        assert all(d == 0 for _, _, d in dfg.edges())

    def test_from_edges_three_tuples(self):
        dfg = DFG.from_edges([("a", "b", 2)])
        assert dfg.edges() == [("a", "b", 2)]

    def test_from_edges_with_ops(self):
        dfg = DFG.from_edges([("a", "b")], ops={"a": "mul", "b": "add"})
        assert dfg.op("a") == "mul"
        assert dfg.op("b") == "add"


class TestInspection:
    def test_parents_children(self, diamond):
        assert sorted(diamond.children("a")) == ["b", "c"]
        assert sorted(diamond.parents("d")) == ["b", "c"]
        assert diamond.parents("a") == []
        assert diamond.children("d") == []

    def test_unknown_node_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.parents("zzz")
        with pytest.raises(GraphError):
            diamond.op("zzz")

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == ["a"]
        assert diamond.leaves() == ["d"]

    def test_degrees_count_distinct_neighbors(self):
        dfg = DFG()
        dfg.add_edge("u", "v", 0)
        dfg.add_edge("u", "v", 1)  # parallel edge
        assert dfg.in_degree("v") == 1
        assert dfg.out_degree("u") == 1

    def test_total_delays(self):
        dfg = DFG.from_edges([("a", "b", 2), ("b", "c", 0), ("c", "a", 3)])
        assert dfg.total_delays() == 5

    def test_has_cycle(self):
        acyclic = DFG.from_edges([("a", "b")])
        assert not acyclic.has_cycle()
        cyclic = DFG.from_edges([("a", "b", 0), ("b", "a", 1)])
        assert cyclic.has_cycle()

    def test_attrs_roundtrip(self):
        dfg = DFG()
        dfg.add_node("x", op="mul")
        dfg.set_attr("x", "origin", "orig")
        assert dfg.attr("x", "origin") == "orig"
        assert dfg.attr("x", "missing", 42) == 42

    def test_attr_unknown_node(self):
        dfg = DFG()
        with pytest.raises(GraphError):
            dfg.attr("nope", "k")
        with pytest.raises(GraphError):
            dfg.set_attr("nope", "k", 1)


class TestDerivedGraphs:
    def test_dag_strips_delayed_edges(self):
        dfg = DFG.from_edges([("a", "b", 0), ("b", "c", 1), ("c", "a", 2)])
        dag = dfg.dag()
        assert dag.edges() == [("a", "b", 0)]
        assert len(dag) == 3  # nodes survive even if isolated

    def test_dag_rejects_zero_delay_cycle(self):
        dfg = DFG.from_edges([("a", "b", 0), ("b", "a", 0)])
        with pytest.raises(CyclicDependencyError):
            dfg.dag()

    def test_dag_preserves_ops(self):
        dfg = DFG.from_edges([("a", "b", 1)], ops={"a": "mul", "b": "add"})
        dag = dfg.dag()
        assert dag.op("a") == "mul"

    def test_transpose_reverses_edges(self, diamond):
        t = diamond.transpose()
        assert sorted(t.children("d")) == ["b", "c"]
        assert t.roots() == ["d"]
        assert t.leaves() == ["a"]

    def test_transpose_preserves_delays(self):
        dfg = DFG.from_edges([("a", "b", 3)])
        assert dfg.transpose().edges() == [("b", "a", 3)]

    def test_double_transpose_is_identity(self, diamond):
        assert diamond.transpose().transpose() == diamond

    def test_copy_is_independent(self, diamond):
        c = diamond.copy()
        c.add_node("new")
        assert "new" not in diamond
        assert len(c) == len(diamond) + 1

    def test_subgraph(self, diamond):
        sub = diamond.subgraph(["a", "b", "d"])
        assert len(sub) == 3
        assert sub.edges() == [("a", "b", 0), ("b", "d", 0)]

    def test_subgraph_unknown_node(self, diamond):
        with pytest.raises(GraphError):
            diamond.subgraph(["a", "nope"])


class TestEquality:
    def test_equal_graphs(self):
        g1 = DFG.from_edges([("a", "b", 1)], ops={"a": "mul", "b": "add"})
        g2 = DFG.from_edges([("a", "b", 1)], ops={"a": "mul", "b": "add"})
        assert g1 == g2

    def test_different_ops_not_equal(self):
        g1 = DFG.from_edges([("a", "b")], ops={"a": "mul", "b": "add"})
        g2 = DFG.from_edges([("a", "b")], ops={"a": "add", "b": "add"})
        assert g1 != g2

    def test_different_delays_not_equal(self):
        g1 = DFG.from_edges([("a", "b", 0)])
        g2 = DFG.from_edges([("a", "b", 1)])
        assert g1 != g2
