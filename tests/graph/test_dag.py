"""Unit tests for DAG orderings and reachability."""

import pytest

from repro.errors import CyclicDependencyError
from repro.graph.dag import (
    ancestors,
    depth_map,
    descendants,
    height_map,
    require_acyclic,
    reverse_topological_order,
    topological_order,
)
from repro.graph.dfg import DFG


class TestTopologicalOrder:
    def test_respects_edges(self, diamond):
        order = topological_order(diamond)
        pos = {n: i for i, n in enumerate(order)}
        for u, v, _ in diamond.edges():
            assert pos[u] < pos[v]

    def test_covers_all_nodes(self, diamond):
        assert set(topological_order(diamond)) == set(diamond.nodes())

    def test_reverse_is_reversed(self, diamond):
        assert reverse_topological_order(diamond) == list(
            reversed(topological_order(diamond))
        )

    def test_cyclic_rejected(self):
        cyc = DFG.from_edges([("a", "b", 0), ("b", "a", 0)])
        with pytest.raises(CyclicDependencyError):
            topological_order(cyc)

    def test_require_acyclic_message_mentions_dag(self):
        cyc = DFG.from_edges([("a", "b", 0), ("b", "a", 1)])
        with pytest.raises(CyclicDependencyError, match="dag"):
            require_acyclic(cyc)

    def test_isolated_nodes_included(self):
        dfg = DFG()
        dfg.add_node("lonely")
        assert topological_order(dfg) == ["lonely"]


class TestReachability:
    def test_descendants(self, diamond):
        assert descendants(diamond, "a") == {"b", "c", "d"}
        assert descendants(diamond, "d") == set()

    def test_ancestors(self, diamond):
        assert ancestors(diamond, "d") == {"a", "b", "c"}
        assert ancestors(diamond, "a") == set()

    def test_unknown_node(self, diamond):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            descendants(diamond, "zzz")
        with pytest.raises(GraphError):
            ancestors(diamond, "zzz")


class TestDepthHeight:
    def test_depth_map(self, diamond):
        d = depth_map(diamond)
        assert d == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_height_map(self, diamond):
        h = height_map(diamond)
        assert h == {"a": 2, "b": 1, "c": 1, "d": 0}

    def test_depth_plus_height_bounded_by_longest_chain(self, diamond):
        d, h = depth_map(diamond), height_map(diamond)
        longest = max(d[n] + h[n] for n in diamond.nodes())
        assert longest == 2
        # every node lies on some maximal chain in a diamond
        assert all(d[n] + h[n] == longest for n in diamond.nodes())
