"""repro.io: instance exchange formats and the canonical instance key.

The canonical key is the serve layer's cache identity, so its two core
guarantees are pinned here from the io side (and again through
checkkit's ``canonical_key`` metamorphic relation):

* **relabel invariance** — isomorphic twins produced by
  :func:`repro.checkkit.metamorphic.relabel_instance` share a key;
* **content sensitivity** — perturbing the deadline, a table row, an
  op, or an edge delay changes the key.
"""

from __future__ import annotations

import json

import pytest

from repro.checkkit.generators import SPECS, generate, mix_seed
from repro.checkkit.metamorphic import relabel_instance
from repro.errors import GraphError, TableError
from repro.fu.random_tables import random_table
from repro.graph.dfg import DFG
from repro.io import (
    INSTANCE_SCHEMA_VERSION,
    canonical_instance_dict,
    canonical_order,
    dump,
    dumps_text,
    instance_from_dict,
    instance_from_json,
    instance_key,
    instance_to_dict,
    instance_to_json,
    load,
    loads_text,
)
from repro.suite.registry import get_benchmark

from .conftest import make_table


def _instances(count: int = 12):
    """A replayable spread of fuzz instances across every spec family."""
    for i in range(count):
        spec = SPECS[i % len(SPECS)]
        yield generate(spec, mix_seed(7, i))


class TestJsonRoundTrip:
    def test_round_trip_preserves_instance(self):
        for inst in _instances():
            text = instance_to_json(inst.dfg, inst.table, inst.deadline)
            dfg2, table2, deadline2 = instance_from_json(text)
            assert dfg2 == inst.dfg
            assert deadline2 == inst.deadline
            for node in inst.dfg.nodes():
                assert list(table2.times(node)) == list(inst.table.times(node))
                assert list(table2.costs(node)) == list(inst.table.costs(node))

    def test_round_trip_without_table_or_deadline(self, diamond):
        dfg2, table2, deadline2 = instance_from_json(instance_to_json(diamond))
        assert dfg2 == diamond
        assert table2 is None and deadline2 is None

    def test_schema_version_stamped_and_checked(self, diamond):
        doc = instance_to_dict(diamond)
        assert doc["schema_version"] == INSTANCE_SCHEMA_VERSION == 1
        doc["schema_version"] = 99
        with pytest.raises(GraphError, match="schema_version"):
            instance_from_dict(doc)

    def test_invalid_json_is_graph_error(self):
        with pytest.raises(GraphError, match="invalid instance JSON"):
            instance_from_json("{not json")

    def test_orphan_rows_rejected(self, diamond):
        doc = instance_to_dict(diamond, make_table(diamond))
        doc["rows"]["ghost"] = doc["rows"]["a"]
        with pytest.raises(TableError, match="unknown nodes"):
            instance_from_dict(doc)

    def test_malformed_rows_are_table_error(self, diamond):
        doc = instance_to_dict(diamond, make_table(diamond))
        doc["rows"]["a"] = {"times": [1, "x"], "costs": [1.0]}
        with pytest.raises(TableError, match="malformed instance rows"):
            instance_from_dict(doc)


class TestCanonicalKey:
    def test_relabel_invariance(self):
        for i, inst in enumerate(_instances()):
            twin_dfg, twin_table, _ = relabel_instance(
                inst.dfg, inst.table, seed=100 + i
            )
            assert instance_key(
                inst.dfg, inst.table, inst.deadline
            ) == instance_key(twin_dfg, twin_table, inst.deadline)

    def test_insertion_order_irrelevant(self):
        a = DFG.from_edges([("x", "y"), ("y", "z")], name="fwd")
        b = DFG("rev")
        for n in ("z", "y", "x"):
            b.add_node(n, "op")
        b.add_edge("x", "y")
        b.add_edge("y", "z")
        from repro.fu.table import TimeCostTable

        rows = {
            "x": ([1, 3], [8.0, 2.0]),
            "y": ([2, 4], [9.0, 3.0]),
            "z": ([1, 2], [7.0, 1.0]),
        }
        t = TimeCostTable.from_rows(rows)
        assert instance_key(a, t, 10) == instance_key(b, t, 10)

    def test_graph_name_excluded(self, chain3, chain3_table):
        key = instance_key(chain3, chain3_table, 12)
        chain3.name = "something-else"
        assert instance_key(chain3, chain3_table, 12) == key

    def test_deadline_sensitivity(self, chain3, chain3_table):
        assert instance_key(chain3, chain3_table, 12) != instance_key(
            chain3, chain3_table, 13
        )

    def test_table_sensitivity(self, chain3, chain3_table):
        perturbed = chain3_table.with_row(
            "b",
            [t + 1 for t in chain3_table.times("b")],
            list(chain3_table.costs("b")),
        )
        assert instance_key(chain3, chain3_table, 12) != instance_key(
            chain3, perturbed, 12
        )

    def test_op_sensitivity(self):
        a = DFG.from_edges([("u", "v")], name="g")
        b = DFG("g")
        b.add_node("u", "mul")
        b.add_node("v", "op")
        b.add_edge("u", "v")
        t = make_table(a)
        assert instance_key(a, t, 9) != instance_key(b, make_table(b), 9)

    def test_symmetric_graph_canonicalizes(self):
        """4 indistinguishable isolated nodes: the individualization
        search must terminate and stay permutation-stable."""
        keys = set()
        for names in (["a", "b", "c", "d"], ["d", "c", "b", "a"]):
            g = DFG("sym")
            for n in names:
                g.add_node(n, "op")
            rows = {n: ([2, 3, 4], [9.0, 5.0, 1.0]) for n in names}
            from repro.fu.table import TimeCostTable

            keys.add(instance_key(g, TimeCostTable.from_rows(rows), 8))
        assert len(keys) == 1

    def test_canonical_dict_is_label_free(self, chain3, chain3_table):
        doc = canonical_instance_dict(chain3, chain3_table, 12)
        text = json.dumps(doc)
        assert "chain3" not in text
        for node in chain3.nodes():
            assert f'"{node}"' not in text

    def test_canonical_order_is_a_permutation(self):
        for inst in _instances(6):
            order = canonical_order(inst.dfg, inst.table)
            assert sorted(map(str, order)) == sorted(
                str(n) for n in inst.dfg.nodes()
            )


class TestTextFormat:
    def test_text_round_trip(self):
        bench = get_benchmark("elliptic")
        table = random_table(bench.dag(), num_types=3, seed=2004)
        dfg2, table2 = loads_text(dumps_text(bench, table))
        assert dfg2 == bench
        for node in bench.nodes():
            assert list(table2.times(node)) == list(table.times(node))


class TestFileAutoDetect:
    def test_json_by_suffix_and_content(self, tmp_path, chain3, chain3_table):
        p_json = tmp_path / "inst.json"
        dump(str(p_json), chain3, chain3_table, 12)
        dfg2, table2, deadline2 = load(str(p_json))
        assert dfg2 == chain3 and deadline2 == 12

        # same content under a neutral suffix: sniffed from the "{"
        p_any = tmp_path / "inst.data"
        p_any.write_text(p_json.read_text())
        dfg3, _, deadline3 = load(str(p_any))
        assert dfg3 == chain3 and deadline3 == 12

    def test_text_by_default(self, tmp_path, chain3, chain3_table):
        p = tmp_path / "inst.dfg"
        dump(str(p), chain3, chain3_table)
        dfg2, table2, deadline2 = load(str(p))
        assert dfg2 == chain3 and deadline2 is None
        assert list(table2.times("a")) == list(chain3_table.times("a"))
