"""Unit tests for time/cost tables."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.fu.table import TimeCostTable
from repro.graph.dfg import DFG


@pytest.fixture
def table():
    return TimeCostTable.from_rows(
        {
            "a": ([1, 2, 3], [9.0, 5.0, 2.0]),
            "b": ([2, 2, 5], [7.0, 7.0, 1.0]),
        }
    )


class TestConstruction:
    def test_from_rows(self, table):
        assert table.num_types == 3
        assert len(table) == 2
        assert "a" in table and "c" not in table

    def test_empty_rejected(self):
        with pytest.raises(TableError):
            TimeCostTable.from_rows({})

    def test_zero_types_rejected(self):
        with pytest.raises(TableError):
            TimeCostTable(0)

    def test_row_length_mismatch(self):
        t = TimeCostTable(3)
        with pytest.raises(TableError):
            t.set_row("x", [1, 2], [1.0, 2.0, 3.0])

    def test_negative_time_rejected(self):
        t = TimeCostTable(2)
        with pytest.raises(TableError):
            t.set_row("x", [-1, 2], [1.0, 2.0])

    def test_fractional_time_rejected(self):
        t = TimeCostTable(2)
        with pytest.raises(TableError):
            t.set_row("x", [1.5, 2], [1.0, 2.0])

    def test_integer_valued_float_time_accepted(self):
        t = TimeCostTable(2)
        t.set_row("x", [1.0, 2.0], [1.0, 2.0])
        assert t.time("x", 0) == 1

    def test_negative_cost_rejected(self):
        t = TimeCostTable(2)
        with pytest.raises(TableError):
            t.set_row("x", [1, 2], [-1.0, 2.0])

    def test_nan_cost_rejected(self):
        t = TimeCostTable(2)
        with pytest.raises(TableError):
            t.set_row("x", [1, 2], [float("nan"), 2.0])

    def test_zero_time_allowed_for_pseudo_nodes(self):
        t = TimeCostTable(2)
        t.set_row("pseudo", [0, 0], [0.0, 0.0])
        assert t.min_time("pseudo") == 0


class TestAccess:
    def test_time_cost(self, table):
        assert table.time("a", 1) == 2
        assert table.cost("b", 2) == 1.0

    def test_rows_read_only(self, table):
        with pytest.raises(ValueError):
            table.times("a")[0] = 99

    def test_out_of_range_type(self, table):
        with pytest.raises(TableError):
            table.time("a", 3)
        with pytest.raises(TableError):
            table.cost("a", -1)

    def test_unknown_node(self, table):
        with pytest.raises(TableError):
            table.times("zzz")

    def test_min_time_cost(self, table):
        assert table.min_time("a") == 1
        assert table.min_cost("a") == 2.0

    def test_min_times_map(self, table):
        assert table.min_times() == {"a": 1, "b": 2}
        assert table.min_times(["b"]) == {"b": 2}

    def test_fastest_type_tie_breaks_on_cost(self, table):
        # b: times (2,2,5) tie between types 0 and 1, costs equal -> index 0
        assert table.fastest_type("b") == 0

    def test_cheapest_type(self, table):
        assert table.cheapest_type("a") == 2

    def test_cheapest_tie_breaks_on_time(self):
        t = TimeCostTable.from_rows({"x": ([5, 2], [3.0, 3.0])})
        assert t.cheapest_type("x") == 1


class TestDerivation:
    def test_with_fixed_pins_all_entries(self, table):
        fixed = table.with_fixed("a", 1)
        assert list(fixed.times("a")) == [2, 2, 2]
        assert list(fixed.costs("a")) == [5.0, 5.0, 5.0]
        # original untouched
        assert list(table.times("a")) == [1, 2, 3]

    def test_with_row_replaces(self, table):
        t2 = table.with_row("a", [9, 9, 9], [1.0, 1.0, 1.0])
        assert t2.min_time("a") == 9
        assert table.min_time("a") == 1

    def test_copy_independent(self, table):
        c = table.copy()
        c.set_row("c", [1, 1, 1], [1.0, 1.0, 1.0])
        assert "c" not in table


class TestRowVersions:
    def test_copy_preserves_versions(self, table):
        c = table.copy()
        assert c.row_version("a") == table.row_version("a")

    def test_set_row_remints(self, table):
        before = table.row_version("a")
        table.set_row("a", [1, 2, 3], [9.0, 5.0, 1.0])
        assert table.row_version("a") != before

    def test_with_fixed_tokens_are_content_stable(self, table):
        # Deriving the same pin twice — even via an intermediate copy —
        # yields the same token; the incremental DP engine's cross-sweep
        # cache hits depend on this.
        once = table.with_fixed("a", 1)
        again = table.copy().with_fixed("a", 1)
        assert once.row_version("a") == again.row_version("a")
        assert once.row_version("b") == table.row_version("b")

    def test_with_fixed_tokens_differ_by_type(self, table):
        assert (
            table.with_fixed("a", 0).row_version("a")
            != table.with_fixed("a", 1).row_version("a")
        )

    def test_distinct_rows_have_distinct_versions(self, table):
        assert table.row_version("a") != table.row_version("b")

    def test_missing_row_raises(self, table):
        with pytest.raises(TableError, match="no table row"):
            table.row_version("nope")


class TestValidation:
    def test_validate_for_ok(self, table):
        dfg = DFG.from_edges([("a", "b")])
        table.validate_for(dfg)  # must not raise

    def test_validate_for_missing(self, table):
        dfg = DFG.from_edges([("a", "zzz")])
        with pytest.raises(TableError, match="zzz"):
            table.validate_for(dfg)
