"""Unit tests for the FU-library presets."""

import pytest

from repro.errors import TableError
from repro.fu.models import energy_table, reliability_table
from repro.fu.presets import PRESETS, preset_library, preset_names
from repro.suite.registry import get_benchmark


class TestRegistry:
    def test_names(self):
        assert preset_names() == ["asic", "fpga", "safety"]

    def test_unknown(self):
        with pytest.raises(TableError, match="available"):
            preset_library("quantum")

    def test_lookup(self):
        assert preset_library("asic") is PRESETS["asic"]


class TestLadders:
    @pytest.mark.parametrize("name", ["asic", "fpga"])
    def test_speed_cost_tradeoff(self, name):
        lib = preset_library(name)
        speeds = [t.speed for t in lib]
        energies = [t.energy_per_step for t in lib]
        assert speeds == sorted(speeds, reverse=True)
        assert energies == sorted(energies, reverse=True)

    def test_safety_reliability_ladder(self):
        lib = preset_library("safety")
        rates = [t.failure_rate for t in lib]
        assert rates == sorted(rates, reverse=True)
        # the hardened units are slower than COTS
        assert lib[0].speed > lib[-1].speed


class TestUsableWithModels:
    @pytest.mark.parametrize("name", ["asic", "fpga", "safety"])
    def test_builds_both_tables(self, name):
        dfg = get_benchmark("diffeq")
        lib = preset_library(name)
        for table in (energy_table(dfg, lib), reliability_table(dfg, lib)):
            table.validate_for(dfg)
            assert table.num_types == len(lib)

    def test_synthesis_end_to_end(self):
        from repro.assign.assignment import min_completion_time
        from repro.synthesis import synthesize

        dfg = get_benchmark("diffeq").dag()
        table = energy_table(dfg, preset_library("asic"))
        deadline = min_completion_time(dfg, table) + 3
        result = synthesize(dfg, table, deadline)
        result.verify(dfg, table)
