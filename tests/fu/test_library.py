"""Unit tests for FU types and libraries."""

import pytest

from repro.errors import TableError
from repro.fu.library import FULibrary, FUType, default_library


class TestFUType:
    def test_defaults(self):
        t = FUType(name="F1")
        assert t.speed == 1.0
        assert t.failure_rate >= 0

    def test_zero_speed_rejected(self):
        with pytest.raises(TableError):
            FUType(name="bad", speed=0)

    def test_negative_attributes_rejected(self):
        with pytest.raises(TableError):
            FUType(name="bad", failure_rate=-1)
        with pytest.raises(TableError):
            FUType(name="bad", energy_per_step=-1)

    def test_frozen(self):
        t = FUType(name="F1")
        with pytest.raises(AttributeError):
            t.speed = 2.0  # type: ignore[misc]


class TestFULibrary:
    def test_of_and_len(self):
        lib = FULibrary.of(FUType(name="A"), FUType(name="B"))
        assert len(lib) == 2
        assert lib.names == ["A", "B"]

    def test_empty_rejected(self):
        with pytest.raises(TableError):
            FULibrary(types=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(TableError):
            FULibrary.of(FUType(name="A"), FUType(name="A"))

    def test_indexing(self):
        lib = FULibrary.of(FUType(name="A"), FUType(name="B"))
        assert lib[1].name == "B"
        assert lib.index_of("B") == 1

    def test_index_of_unknown(self):
        lib = FULibrary.of(FUType(name="A"))
        with pytest.raises(TableError):
            lib.index_of("Z")

    def test_iteration_order(self):
        lib = FULibrary.of(FUType(name="A"), FUType(name="B"), FUType(name="C"))
        assert [t.name for t in lib] == ["A", "B", "C"]


class TestDefaultLibrary:
    def test_three_graded_types(self):
        lib = default_library(3)
        assert lib.names == ["F1", "F2", "F3"]
        # F1 fastest, F3 slowest
        speeds = [t.speed for t in lib]
        assert speeds == sorted(speeds, reverse=True)

    def test_failure_rates_grow_with_speed(self):
        lib = default_library(3)
        rates = [t.failure_rate for t in lib]
        assert rates == sorted(rates, reverse=True)

    def test_custom_speeds(self):
        lib = default_library(2, speeds=[4.0, 1.0], failure_rates=[1e-3, 1e-4])
        assert lib[0].speed == 4.0

    def test_bad_lengths(self):
        with pytest.raises(TableError):
            default_library(3, speeds=[1.0])

    def test_bad_count(self):
        with pytest.raises(TableError):
            default_library(0)

    def test_single_type(self):
        lib = default_library(1)
        assert len(lib) == 1
