"""Unit tests for the paper-style randomized tables."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.fu.random_tables import random_table, random_table_for_nodes
from repro.graph.dfg import DFG


@pytest.fixture
def graph():
    return DFG.from_edges([("a", "b"), ("b", "c"), ("c", "d")])


class TestMonotoneLadder:
    def test_times_strictly_increase(self, graph):
        table = random_table(graph, num_types=3, seed=1)
        for n in graph.nodes():
            t = table.times(n)
            assert all(t[i] < t[i + 1] for i in range(len(t) - 1))

    def test_costs_strictly_decrease(self, graph):
        table = random_table(graph, num_types=3, seed=1)
        for n in graph.nodes():
            c = table.costs(n)
            assert all(c[i] > c[i + 1] for i in range(len(c) - 1))

    def test_no_dominated_options(self, graph):
        # strict monotonicity in both columns means every type is on
        # the Pareto front
        table = random_table(graph, num_types=4, seed=3)
        for n in graph.nodes():
            t, c = table.times(n), table.costs(n)
            for i in range(4):
                for j in range(4):
                    if i != j:
                        assert not (t[i] <= t[j] and c[i] <= c[j])


class TestDeterminism:
    def test_same_seed_same_table(self, graph):
        t1 = random_table(graph, seed=42)
        t2 = random_table(graph, seed=42)
        for n in graph.nodes():
            assert np.array_equal(t1.times(n), t2.times(n))
            assert np.array_equal(t1.costs(n), t2.costs(n))

    def test_different_seed_different_table(self, graph):
        t1 = random_table(graph, seed=1)
        t2 = random_table(graph, seed=2)
        assert any(
            not np.array_equal(t1.times(n), t2.times(n)) for n in graph.nodes()
        )

    def test_shared_rng_continues_stream(self, graph):
        rng = np.random.default_rng(0)
        t1 = random_table_for_nodes(["x"], rng=rng)
        t2 = random_table_for_nodes(["x"], rng=rng)
        # continuing the stream should (almost surely) differ
        assert not (
            np.array_equal(t1.times("x"), t2.times("x"))
            and np.array_equal(t1.costs("x"), t2.costs("x"))
        )


class TestValidation:
    def test_covers_all_nodes(self, graph):
        table = random_table(graph, seed=0)
        table.validate_for(graph)

    def test_single_type(self, graph):
        table = random_table(graph, num_types=1, seed=0)
        assert table.num_types == 1

    def test_zero_types_rejected(self, graph):
        with pytest.raises(TableError):
            random_table(graph, num_types=0)

    def test_empty_nodes_rejected(self):
        with pytest.raises(TableError):
            random_table_for_nodes([])

    def test_base_time_bounds(self, graph):
        table = random_table(graph, seed=5, max_base_time=1, max_time_step=1)
        for n in graph.nodes():
            assert list(table.times(n)) == [1, 2, 3]
