"""Unit tests for the energy and reliability cost models."""

import math

import pytest

from repro.errors import TableError
from repro.fu.library import default_library
from repro.fu.models import (
    DEFAULT_OP_WORK,
    energy_table,
    execution_times,
    reliability_table,
    system_reliability,
)
from repro.graph.dfg import DFG


@pytest.fixture
def graph():
    return DFG.from_edges(
        [("m", "a")], ops={"m": "mul", "a": "add"}
    )


@pytest.fixture
def lib():
    return default_library(3)


class TestExecutionTimes:
    def test_faster_types_take_fewer_steps(self, graph, lib):
        times = execution_times(graph, lib)
        for node in graph.nodes():
            assert times[node] == sorted(times[node])  # F1 fastest

    def test_never_below_one_step(self, graph, lib):
        times = execution_times(graph, lib)
        assert all(t >= 1 for row in times.values() for t in row)

    def test_mul_slower_than_add(self, graph, lib):
        times = execution_times(graph, lib)
        assert times["m"][-1] >= times["a"][-1]

    def test_unknown_op_raises(self, lib):
        dfg = DFG()
        dfg.add_node("x", op="transmogrify")
        with pytest.raises(TableError, match="transmogrify"):
            execution_times(dfg, lib)

    def test_custom_op_work(self, lib):
        dfg = DFG()
        dfg.add_node("x", op="fft")
        times = execution_times(dfg, lib, op_work={"fft": 8})
        assert times["x"][-1] == 8  # slowest type has speed 1.0

    def test_bad_workload(self, lib):
        dfg = DFG()
        dfg.add_node("x", op="nop")
        with pytest.raises(TableError):
            execution_times(dfg, lib, op_work={"nop": 0})


class TestEnergyTable:
    def test_shape(self, graph, lib):
        table = energy_table(graph, lib)
        assert table.num_types == 3
        table.validate_for(graph)

    def test_energy_is_power_times_time(self, graph, lib):
        table = energy_table(graph, lib)
        times = execution_times(graph, lib)
        for n in graph.nodes():
            for j in range(3):
                assert table.cost(n, j) == pytest.approx(
                    lib[j].energy_per_step * times[n][j]
                )

    def test_tradeoff_exists(self, graph, lib):
        # the fast type must not also be cheapest (else no problem to solve)
        table = energy_table(graph, lib)
        assert table.cost("m", 0) > table.cost("m", 2)
        assert table.time("m", 0) < table.time("m", 2)


class TestReliabilityTable:
    def test_cost_is_lambda_times_time(self, graph, lib):
        table = reliability_table(graph, lib, scale=1.0)
        times = execution_times(graph, lib)
        for n in graph.nodes():
            for j in range(3):
                assert table.cost(n, j) == pytest.approx(
                    lib[j].failure_rate * times[n][j]
                )

    def test_scale_does_not_change_argmin(self, graph, lib):
        t1 = reliability_table(graph, lib, scale=1.0)
        t2 = reliability_table(graph, lib, scale=1e6)
        for n in graph.nodes():
            assert t1.cheapest_type(n) == t2.cheapest_type(n)

    def test_system_reliability_inverts_scale(self):
        # total cost 0 -> reliability 1
        assert system_reliability(0.0) == 1.0
        # consistency with exp model
        assert system_reliability(1e4, scale=1e4) == pytest.approx(math.exp(-1))

    def test_reliability_decreases_with_cost(self):
        assert system_reliability(100.0) > system_reliability(200.0)


class TestDefaults:
    def test_default_op_work_covers_dsp_ops(self):
        for op in ("mul", "add", "sub", "cmp"):
            assert op in DEFAULT_OP_WORK
